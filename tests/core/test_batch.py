"""Batch executor tests (repro.core.batch).

The contract under test: every query in a batch is *bit-identical* to
the solo run it replaces -- same values, same retirement iteration as
the solo push schedule -- across program families, state layouts,
storage tiers (in-RAM vs shard store), shard backends (serial, thread
pool, process pool) and kernel backends. The batch is a pure
scan-sharing rewrite; nothing about any individual query's answer may
change.
"""

import types

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.fixture_graphs import build
from repro.algorithms import SSSP, BFSGather, ConnectedComponents, PageRank
from repro.core.batch import BatchRunner, _BatchLedger, _validate_sources
from repro.core.kernels import numba_available
from repro.core.partition import PartitionEngine
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.core.shardstore import ShardStore

SOURCES = [0, 7, 33, 150]
DAMPINGS = [0.7, 0.85, 0.9]
PR_ITERS = 8


def _engine(graph=None, store=None, **opts):
    options = GraphReduceOptions(num_partitions=3, **opts)
    if store is not None:
        return GraphReduce(shard_store=store, options=options)
    return GraphReduce(graph, options=options)


def _store(graph, tmp_path, tag):
    return ShardStore.save(
        PartitionEngine().partition(graph, 3), tmp_path / f"store-{tag}"
    )


def _solo_sweep(make_engine, family):
    """Per-query solo results: (values column, iterations) in order."""
    out = []
    if family in ("bfs", "sssp"):
        cls = BFSGather if family == "bfs" else SSSP
        for s in SOURCES:
            r = make_engine().run(cls(source=s))
            out.append((r.vertex_values, r.iterations))
    elif family == "cc":
        for _ in range(2):
            r = make_engine().run(ConnectedComponents())
            out.append((r.vertex_values, r.iterations))
    else:
        for d in DAMPINGS:
            r = make_engine().run(
                PageRank(damping=d, tolerance=None, max_iterations=PR_ITERS)
            )
            out.append((r.vertex_values, r.iterations))
    return out


def _batch_sweep(make_engine, family, layout="auto"):
    runner = BatchRunner(make_engine(), layout=layout)
    if family == "bfs":
        return runner.run_bfs(SOURCES)
    if family == "sssp":
        return runner.run_sssp(SOURCES)
    if family == "cc":
        return runner.run_cc(count=2)
    return runner.run_pagerank(DAMPINGS, iterations=PR_ITERS)


def _assert_matches_solo(report, solo, label):
    assert len(report.queries) == len(solo), label
    for q, (values, iterations) in zip(report.queries, solo):
        tag = f"{label}/q{q.index}"
        assert np.array_equal(q.values, values), tag
        assert q.iterations == iterations, tag


# ----------------------------------------------------------------------
# Equivalence matrix: family x layout x storage tier
# ----------------------------------------------------------------------

FAMILY_LAYOUTS = [
    ("bfs", "bits"),
    ("bfs", "columns"),
    ("sssp", "columns"),
    ("cc", "columns"),
    ("pagerank", "columns"),
]


@pytest.mark.parametrize("placement", ["ram", "store"])
@pytest.mark.parametrize("family,layout", FAMILY_LAYOUTS)
def test_batch_matches_solo(family, layout, placement, tmp_path):
    g = build("er_mid")
    if family == "sssp":
        g = g.with_random_weights(seed=33)
    if placement == "store":
        store = _store(g, tmp_path, f"{family}-{layout}")
        make_engine = lambda: _engine(store=store)
    else:
        make_engine = lambda: _engine(g)
    solo = _solo_sweep(make_engine, family)
    report = _batch_sweep(make_engine, family, layout=layout)
    _assert_matches_solo(report, solo, f"{family}/{layout}/{placement}")
    assert report.stats["queries"] == len(solo)


# ----------------------------------------------------------------------
# Backend matrix: shard pools and kernel backends
# ----------------------------------------------------------------------

BACKENDS = [
    pytest.param(dict(parallel_shards=2, parallel_backend="threads"), id="threads"),
    pytest.param(dict(parallel_shards=2, parallel_backend="processes"), id="processes"),
    pytest.param(
        dict(kernel_backend="numba"),
        id="numba",
        marks=pytest.mark.skipif(not numba_available(), reason="Numba not installed"),
    ),
]


@pytest.mark.parametrize("extra_opts", BACKENDS)
@pytest.mark.parametrize("family", ["bfs", "pagerank"])
def test_batch_backends_match_serial_solo(family, extra_opts):
    g = build("er_mid")
    solo = _solo_sweep(lambda: _engine(g), family)
    report = _batch_sweep(lambda: _engine(g, **extra_opts), family)
    _assert_matches_solo(report, solo, f"{family}/{sorted(extra_opts)}")


def test_batch_pull_direction_keeps_push_schedule():
    """Values AND per-query iterations stay solo-push-identical when the
    batch itself runs direction-optimized -- the iteration-0 no-op pins
    the natural schedule regardless of batch direction."""
    g = build("er_mid")
    solo = _solo_sweep(lambda: _engine(g), "bfs")
    for direction in ("pull", "auto"):
        report = _batch_sweep(lambda: _engine(g, direction=direction), "bfs")
        _assert_matches_solo(report, solo, f"bfs/direction={direction}")


# ----------------------------------------------------------------------
# Retirement: random source subsets behave like their solo runs
# ----------------------------------------------------------------------

_SOLO_CACHE: dict[int, tuple] = {}


def _solo_bfs(source):
    if source not in _SOLO_CACHE:
        r = _engine(build("er_mid")).run(BFSGather(source=source))
        _SOLO_CACHE[source] = (r.vertex_values, r.iterations)
    return _SOLO_CACHE[source]


@given(st.lists(st.integers(0, 199), min_size=1, max_size=6, unique=True))
@settings(max_examples=12, deadline=None)
def test_random_source_subsets_retire_like_solo(sources):
    report = BatchRunner(_engine(build("er_mid"))).run_bfs(sources)
    for q, s in zip(report.queries, sources):
        values, iterations = _solo_bfs(s)
        assert np.array_equal(q.values, values), s
        assert q.iterations == iterations, s


def test_early_retirement_flags_short_queries():
    """Queries in a small component retire before the batch's last
    iteration and say so."""
    g = build("disc_er")
    report = BatchRunner(_engine(g)).run_bfs([0, g.num_vertices - 1])
    iters = [q.iterations for q in report.queries]
    assert len(set(iters)) > 1
    batch_iters = report.runs[0].iterations
    for q in report.queries:
        assert q.retired_early == (q.iterations < batch_iters)
    assert report.stats["retired_early"] == 1


# ----------------------------------------------------------------------
# Chunking and submission-order bookkeeping
# ----------------------------------------------------------------------


def test_chunks_and_submission_order():
    g = build("er_mid")
    runner = BatchRunner(_engine(g), batch_size=2)
    order = [(s, runner.submit("bfs", source=s)) for s in [5, 3, 9, 1, 7]]
    report = runner.execute()
    assert report.stats["chunks"] == 3
    assert [q.index for q in report.queries] == [i for _, i in order]
    for q, (s, _) in zip(report.queries, order):
        assert q.params["source"] == s
        assert np.array_equal(q.values, _solo_bfs(s)[0])


def test_mixed_families_group_but_return_in_order():
    g = build("er_mid")
    runner = BatchRunner(_engine(g))
    runner.submit("bfs", source=3)
    runner.submit("pagerank", damping=0.85, iterations=PR_ITERS)
    runner.submit("bfs", source=9)
    report = runner.execute()
    assert [q.family for q in report.queries] == ["bfs", "pagerank", "bfs"]
    assert report.stats["chunks"] == 2  # one per family
    assert np.array_equal(report.queries[0].values, _solo_bfs(3)[0])
    assert np.array_equal(report.queries[2].values, _solo_bfs(9)[0])


def test_wide_batch_packs_multiple_words():
    g = build("er_mid")
    report = BatchRunner(_engine(g), batch_size=128).run_bfs(list(range(70)))
    assert report.stats["chunks"] == 1
    assert report.runs[0].batch["words"] == 2
    for k in (0, 63, 64, 69):
        assert np.array_equal(report.queries[k].values, _solo_bfs(k)[0]), k


# ----------------------------------------------------------------------
# Validation and ledger edge cases
# ----------------------------------------------------------------------


def test_submit_validation_errors():
    runner = BatchRunner(_engine(build("er_mid")))
    with pytest.raises(ValueError, match="unknown family"):
        runner.submit("dijkstra")
    with pytest.raises(ValueError, match="need a source"):
        runner.submit("bfs")
    with pytest.raises(ValueError, match="out of range"):
        runner.submit("bfs", source=200)
    with pytest.raises(ValueError, match="out of range"):
        runner.submit("sssp", source=-1)
    with pytest.raises(ValueError, match="damping"):
        runner.submit("pagerank", damping=1.2)
    with pytest.raises(ValueError, match="iterations"):
        runner.submit("pagerank", iterations=0)
    with pytest.raises(ValueError, match="no queries"):
        runner.execute()


def test_runner_constructor_validation():
    engine = _engine(build("er_mid"))
    with pytest.raises(ValueError, match="batch_size"):
        BatchRunner(engine, batch_size=0)
    with pytest.raises(ValueError, match="unknown layout"):
        BatchRunner(engine, layout="rows")


def test_bits_layout_rejects_non_bfs():
    runner = BatchRunner(_engine(build("er_mid")), layout="bits")
    runner.submit("pagerank", damping=0.85)
    with pytest.raises(ValueError, match="only supports bfs"):
        runner.execute()


def test_validate_sources_edge_cases():
    with pytest.raises(ValueError, match="at least one"):
        _validate_sources([], 10)
    with pytest.raises(ValueError, match="integers"):
        _validate_sources([1.5], 10)
    assert _validate_sources([3.0, 7], 10).tolist() == [3, 7]  # integral floats ok


def test_ledger_retires_on_zero_out_degree_frontier():
    ledger = _BatchLedger(2)
    degrees = np.array([2, 0, 1])
    # Query 0 changed a vertex with out-edges: stays live. Query 1
    # changed only a sink: its solo frontier empties, retire at t+1.
    rows = {0: np.array([0]), 1: np.array([1])}
    ledger.observe(lambda k: rows[k], degrees, iteration=3)
    assert ledger.retired_at.tolist() == [-1, 4]
    assert ledger.alive.tolist() == [True, False]
    # A retired query is never revisited; an empty changed set retires.
    ledger.observe(lambda k: np.empty(0, dtype=np.int64), degrees, iteration=5)
    assert ledger.retired_at.tolist() == [6, 4]
    assert ledger.stats()["retired"] == 2


# ----------------------------------------------------------------------
# keep_warm: carried prefetcher and plan cache across runs
# ----------------------------------------------------------------------


def test_keep_warm_carries_dense_plans_in_ram():
    g = build("er_mid")
    engine = _engine(g, keep_warm=True)
    try:
        pr = lambda: PageRank(damping=0.85, tolerance=None, max_iterations=PR_ITERS)
        first = engine.run(pr())
        second = engine.run(pr())
        assert second.plan_cache["carried_plans"] > 0
        assert np.array_equal(first.vertex_values, second.vertex_values)
        cold = _engine(g).run(pr())
        assert np.array_equal(second.vertex_values, cold.vertex_values)
    finally:
        engine.close()


def test_keep_warm_prefetcher_survives_runs(tmp_path):
    store = _store(build("er_mid"), tmp_path, "warm")
    engine = _engine(store=store, keep_warm=True, cache_policy="never")
    try:
        pr = lambda: PageRank(damping=0.85, tolerance=None, max_iterations=4)
        engine.run(pr())
        second = engine.run(pr())
        assert second.prefetch["runs"] == 2
    finally:
        engine.close()


# ----------------------------------------------------------------------
# CLI source parsing
# ----------------------------------------------------------------------


def _args(**kw):
    base = dict(sources_file=None, sources=None, source=None)
    base.update(kw)
    return types.SimpleNamespace(**base)


def test_cli_source_list_parsing(tmp_path):
    from repro.cli import _check_sources, _parse_id_list, _single_source, _source_ids

    assert _parse_id_list("0,17,42") == [0, 17, 42]
    assert _parse_id_list(" 1 2\n3,4 ") == [1, 2, 3, 4]
    with pytest.raises(SystemExit, match="invalid vertex id"):
        _parse_id_list("1,x,3")

    assert _source_ids(_args()) == [0]  # default
    assert _source_ids(_args(source="5,6")) == [5, 6]
    path = tmp_path / "srcs.txt"
    path.write_text("10 11\n12\n")
    assert _source_ids(_args(sources_file=str(path), sources="13")) == [10, 11, 12, 13]
    with pytest.raises(SystemExit, match="does not exist"):
        _source_ids(_args(sources_file=str(tmp_path / "missing.txt")))

    assert _single_source(_args(source="7")) == 7
    with pytest.raises(SystemExit, match="exactly one"):
        _single_source(_args(source="1,2"))

    _check_sources([0, 3], 4)
    with pytest.raises(SystemExit, match="source 4 out of range"):
        _check_sources([0, 4], 4)
