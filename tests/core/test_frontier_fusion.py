"""Frontier Manager tracking and Phase Fusion Engine plans."""

import numpy as np
import pytest

from repro.algorithms import BFS, SSSP, PageRank
from repro.core.api import GASProgram
from repro.core.frontier import FrontierManager
from repro.core.fusion import PHASES, PhaseGroup, build_plan, movement_savings
from repro.core.partition import PartitionEngine
from repro.graph.generators import erdos_renyi


@pytest.fixture
def sharded():
    return PartitionEngine().partition(erdos_renyi(40, 200, seed=1), 4)


class TestFrontier:
    def test_initial_state(self, sharded):
        init = np.zeros(40, dtype=bool)
        init[3] = True
        fm = FrontierManager(sharded, init)
        assert fm.size == 1
        assert fm.history == [1]
        assert fm.iteration == 0

    def test_shape_validation(self, sharded):
        with pytest.raises(ValueError):
            FrontierManager(sharded, np.zeros(7, dtype=bool))

    def test_counts_per_shard(self, sharded):
        mask = np.zeros(40, dtype=bool)
        mask[0] = mask[39] = True
        fm = FrontierManager(sharded, mask)
        counts = fm.counts_per_shard(mask)
        assert counts.sum() == 2
        assert counts[0] >= 1 and counts[-1] >= 1

    def test_active_and_changed_shards(self, sharded):
        mask = np.zeros(40, dtype=bool)
        mask[0] = True
        fm = FrontierManager(sharded, mask)
        assert fm.active_shards().tolist() == [0]
        assert fm.changed_shards().tolist() == []
        fm.mark_changed(np.array([39]))
        assert fm.changed_shards().tolist() == [sharded.num_partitions - 1]

    def test_advance_promotes_next(self, sharded):
        fm = FrontierManager(sharded, np.zeros(40, dtype=bool))
        fm.activate_next(np.array([5, 6]))
        fm.mark_changed(np.array([1]))
        fm.advance()
        assert fm.size == 2
        assert fm.active_in(0, 40).tolist() == [5, 6]
        assert fm.changed_in(0, 40).tolist() == []
        assert fm.history == [0, 2]
        assert fm.iteration == 1

    def test_active_in_window(self, sharded):
        mask = np.zeros(40, dtype=bool)
        mask[[2, 10, 35]] = True
        fm = FrontierManager(sharded, mask)
        assert fm.active_in(0, 11).tolist() == [2, 10]
        assert fm.active_in(11, 40).tolist() == [35]

    def test_low_activity_fraction(self, sharded):
        fm = FrontierManager(sharded, np.zeros(40, dtype=bool))
        fm.history = [1, 10, 10, 4, 4, 1]
        # peak 10; below 5: sizes 1, 4, 4, 1 -> 4 of 6
        assert fm.low_activity_fraction(0.5) == pytest.approx(4 / 6)

    def test_low_activity_all_zero(self, sharded):
        fm = FrontierManager(sharded, np.zeros(40, dtype=bool))
        fm.history = [0, 0]
        assert fm.low_activity_fraction() == 1.0


class TestFusion:
    def test_bfs_plan_fuses_apply_frontier(self):
        plan = build_plan(BFS(), optimized=True)
        assert len(plan) == 1
        assert plan[0].phases == ("apply", "frontier_activate")
        assert plan[0].h2d_buffers == ("out_topology",)
        assert plan[0].d2h_buffers == ()

    def test_gather_plan_pagerank_paper_faithful(self):
        """Default plan mirrors Figure 12: gatherMap and gatherReduce are

        separate phases and the edge update array crosses PCIe twice."""
        plan = build_plan(PageRank(), optimized=True)
        names = [g.name for g in plan]
        assert names == ["gather_map", "gather_reduce", "apply", "frontier_activate"]
        gmap, greduce = plan[0], plan[1]
        assert gmap.h2d_buffers == ("in_topology",)
        assert gmap.d2h_buffers == ("edge_update_array",)
        assert greduce.h2d_buffers == ("edge_update_array",)
        # apply touches only resident buffers
        assert plan[2].h2d_buffers == ()

    def test_gather_fusion_extension(self):
        plan = build_plan(PageRank(), optimized=True, fuse_gather=True)
        names = [g.name for g in plan]
        assert names == ["gather", "apply", "frontier_activate"]
        gather = plan[0]
        assert gather.phases == ("gather_map", "gather_reduce")
        assert gather.h2d_buffers == ("in_topology",)
        assert gather.d2h_buffers == ()  # update array never leaves device
        assert gather.scratch_buffers == ("edge_update_array",)

    def test_sssp_moves_weights(self):
        plan = build_plan(SSSP(), optimized=True)
        assert "in_weights" in plan[0].h2d_buffers

    def test_scatter_plan_fuses_with_frontier(self):
        class WithScatter(GASProgram):
            edge_dtype = np.float32

            def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
                return src_vals

            def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
                return old_vals, np.zeros(len(vids), dtype=bool)

            def scatter(self, ctx, src_ids, src_vals, weights, edge_states):
                return edge_states

        plan = build_plan(WithScatter(), optimized=True, fuse_gather=True)
        names = [g.name for g in plan]
        assert names == ["gather", "apply", "scatter_fa"]
        sfa = plan[-1]
        assert sfa.phases == ("scatter", "frontier_activate")
        assert "out_edge_state" in sfa.h2d_buffers
        assert sfa.d2h_buffers == ("out_edge_state",)

    def test_unoptimized_plan_runs_all_five(self):
        plan = build_plan(BFS(), optimized=False)
        assert tuple(g.name for g in plan) == PHASES
        for g in plan:
            assert g.selector == "all"
            assert "in_topology" in g.h2d_buffers
            assert "out_topology" in g.h2d_buffers
            assert "edge_update_array" in g.d2h_buffers

    def test_phase_group_validation(self):
        with pytest.raises(ValueError):
            PhaseGroup("x", ("bogus",), "active", (), ())
        with pytest.raises(ValueError):
            PhaseGroup("x", ("apply",), "sometimes", (), ())

    def test_movement_savings_report(self):
        s = movement_savings(BFS())
        assert s["eliminates_gather_buffers"]
        assert s["fuses_apply_frontier"]
        s2 = movement_savings(PageRank())
        assert s2["fuses_gather_map_reduce"]
        assert not s2["fuses_apply_frontier"]
