"""Extensions beyond the paper's evaluation: multi-GPU, SSD backing,

adaptive CPU/GPU scheduling (the Section-8 future-work items)."""

import numpy as np
import pytest

from repro.algorithms import BFS, PageRank, ConnectedComponents
from repro.core.multigpu import MultiGPUGraphReduce
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.core.scheduler import AdaptiveEngine
from repro.graph.generators import erdos_renyi, rmat, road_network
from repro.sim.specs import HostSpec, MachineSpec


@pytest.fixture(scope="module")
def kron():
    return rmat(11, 30_000, seed=9)


class TestMultiGPU:
    def test_results_match_single_device(self, kron):
        single = GraphReduce(kron).run(BFS(source=1))
        for n in (1, 2, 4):
            multi = MultiGPUGraphReduce(kron, num_devices=n).run(BFS(source=1))
            assert np.array_equal(multi.vertex_values, single.vertex_values)
            assert multi.iterations == single.iterations
            assert multi.num_devices == n

    def test_invalid_device_count(self, kron):
        with pytest.raises(ValueError):
            MultiGPUGraphReduce(kron, num_devices=0)

    def test_streaming_work_scales(self, kron):
        """More devices split the shard streaming; on a streaming-bound

        run the makespan improves (sub-linearly, replication eats in)."""
        opts = GraphReduceOptions(cache_policy="never", num_partitions=8)
        t1 = MultiGPUGraphReduce(kron, 1, options=opts).run(PageRank(tolerance=1e-3))
        t2 = MultiGPUGraphReduce(kron, 2, options=opts).run(PageRank(tolerance=1e-3))
        assert t2.sim_time < t1.sim_time
        assert t2.sim_time > t1.sim_time / 2  # replication is not free

    def test_replication_traffic_grows_with_devices(self, kron):
        opts = GraphReduceOptions(cache_policy="never", num_partitions=8)
        r2 = MultiGPUGraphReduce(kron, 2, options=opts).run(BFS(source=1))
        r4 = MultiGPUGraphReduce(kron, 4, options=opts).run(BFS(source=1))
        assert r4.replication_bytes > r2.replication_bytes


class TestSSDBacking:
    def test_ssd_slower_than_dram_when_spilled(self, kron):
        # Shrink host memory so most of the graph spills to flash.
        machine = MachineSpec(host=HostSpec(memory_bytes=100_000))
        dram = GraphReduce(
            kron, options=GraphReduceOptions(cache_policy="never")
        ).run(BFS(source=1))
        ssd = GraphReduce(
            kron,
            machine=machine,
            options=GraphReduceOptions(cache_policy="never", host_backing="ssd"),
        ).run(BFS(source=1))
        assert np.array_equal(dram.vertex_values, ssd.vertex_values)
        assert ssd.sim_time > dram.sim_time
        assert ssd.trace.total_duration("storage") > 0

    def test_no_spill_when_graph_fits_host(self, kron):
        r = GraphReduce(
            kron, options=GraphReduceOptions(cache_policy="never", host_backing="ssd")
        ).run(BFS(source=1))
        # Host DRAM is large at reproduction scale; nothing spills.
        assert r.trace.total_duration("storage") == 0

    def test_unknown_backing_rejected(self, kron):
        with pytest.raises(ValueError, match="host_backing"):
            GraphReduce(
                kron, options=GraphReduceOptions(host_backing="tape")
            ).run(BFS())


class TestAdaptiveScheduler:
    def test_results_match_graphreduce(self, kron):
        gr = GraphReduce(kron).run(ConnectedComponents())
        ad = AdaptiveEngine(kron).run(ConnectedComponents())
        assert np.array_equal(ad.vertex_values, gr.vertex_values)
        assert ad.iterations == gr.iterations

    def test_sparse_tail_runs_on_cpu(self):
        """High-diameter BFS: tiny frontiers should land on the CPU."""
        g = road_network(60, 60, 100, seed=4)
        r = AdaptiveEngine(g).run(BFS(source=0))
        assert r.converged
        assert "cpu" in r.placement

    def test_dense_iterations_run_on_gpu(self, kron):
        r = AdaptiveEngine(kron).run(PageRank(tolerance=1e-3))
        # The all-active early iterations belong on the GPU.
        assert r.placement[0] == "gpu"

    def test_switching_is_paid_and_counted(self):
        g = road_network(60, 60, 100, seed=4)
        r = AdaptiveEngine(g).run(BFS(source=0))
        if r.switches:
            assert r.switch_time > 0
        assert r.sim_time == pytest.approx(r.gpu_time + r.cpu_time + r.switch_time)

    def test_placement_log_covers_every_iteration(self, kron):
        r = AdaptiveEngine(kron).run(BFS(source=1))
        assert len(r.placement) == r.iterations
        assert set(r.placement) <= {"gpu", "cpu"}
