"""Execution report aggregation."""

import numpy as np
import pytest

from repro.algorithms import BFS, PageRank
from repro.core.report import build_report
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.graph.generators import rmat


@pytest.fixture(scope="module")
def result():
    g = rmat(10, 10_000, seed=41)
    return GraphReduce(g, options=GraphReduceOptions(cache_policy="never")).run(
        PageRank(tolerance=1e-3)
    )


def test_phase_breakdown_covers_plan(result):
    report = build_report(result)
    # Paper-faithful PR plan: gatherMap, gatherReduce, apply, FA, plus
    # resident uploads and the per-iteration frontier copies.
    assert {"gather_map", "gather_reduce", "apply", "frontier_activate"} <= set(report.phases)
    assert "resident" in report.phases
    assert "frontier" in report.phases


def test_totals_match_result(result):
    report = build_report(result)
    total_xfer = sum(p.transfer_time for p in report.phases.values())
    assert total_xfer == pytest.approx(result.memcpy_time, rel=1e-9)
    total_kernel = sum(p.kernel_time for p in report.phases.values())
    assert total_kernel == pytest.approx(result.kernel_time, rel=1e-9)
    launches = sum(p.kernel_launches for p in report.phases.values())
    assert launches == result.stats.kernel_launches


def test_gather_map_writes_updates_back(result):
    report = build_report(result)
    assert report.phases["gather_map"].d2h_bytes > 0  # edge update array out
    assert report.phases["gather_reduce"].h2d_bytes > 0  # and back in
    assert report.phases["apply"].h2d_bytes == 0  # resident-only phase


def test_overlap_and_skip_metrics(result):
    report = build_report(result)
    assert report.overlap_efficiency > 0
    assert 0 <= report.shard_skip_rate < 1


def test_text_rendering(result):
    text = build_report(result).to_text()
    assert "gather_map" in text
    assert "overlap efficiency" in text
    assert "MB" in text


def test_requires_trace():
    g = rmat(8, 1000, seed=42)
    r = GraphReduce(g, options=GraphReduceOptions(trace=False)).run(BFS(source=0))
    with pytest.raises(ValueError, match="trace"):
        build_report(r)
