"""Direction-optimizing traversal: equivalence matrix + decision rule.

Push, pull and auto must be *bit-identical* on final values: pull runs
an iteration with a superset frontier, which is a no-op for the extra
vertices exactly when apply is improvement-driven (the
``pull_compatible`` contract). The matrix checks BFS levels and SSSP
distances against the pure-Python references and against each other
across execution backends and storage, plus structural parent-validity
invariants that would catch a "right by accident" fixed point.

Cost control: the full direction x backend x storage cross product is
run serially in-RAM on every fixture graph; the expensive legs --
process pools (one spawn per run) and on-disk shard stores -- run the
full direction set on a representative subset (path/road/ER/R-MAT
cover the frontier shapes that drive every code path).

The second half pins the DirectionController itself: the recorded
per-iteration decisions must replay the Beamer alpha/beta hysteresis
rule exactly, and `auto` must be deterministic for a given graph+seed
(hypothesis over generator parameters).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.fixture_graphs import FIXTURE_NAMES, build
from tests.references import bfs_levels, sssp_distances
from repro.algorithms import BFS, BFSGather, ConnectedComponents, DeltaSSSP, SSSP
from repro.core.frontier import DirectionController
from repro.core.kernels import numba_available
from repro.core.partition import PartitionEngine
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.core.shardstore import ShardStore
from repro.graph.generators import erdos_renyi, grid_road, rmat

DIRECTIONS = ("push", "pull", "auto")
BACKENDS = {
    "serial": dict(parallel_backend="serial"),
    "threads": dict(parallel_shards=3, parallel_backend="threads"),
    "processes": dict(parallel_shards=2, parallel_backend="processes"),
}
#: representative subset for the expensive legs (see module docstring)
CORE_GRAPHS = ("path300", "road10x10", "er_small", "rmat_small")


def _options(direction, backend, **kw):
    return GraphReduceOptions(
        num_partitions=3, direction=direction, **BACKENDS[backend], **kw
    )


def _check_bfs(graph, levels, source=0):
    """Parent validity: the levels form a valid BFS tree layering."""
    ref = bfs_levels(graph, source)
    np.testing.assert_array_equal(levels, ref)
    assert levels[source] == 0.0
    # Every reached vertex at depth d > 0 has an in-neighbor at d - 1,
    # and no edge jumps a layer (|level(dst) - level(src)| <= 1 when
    # both ends are reached).
    finite = np.isfinite(levels)
    lsrc = levels[graph.src]
    ldst = levels[graph.dst]
    both = np.isfinite(lsrc) & np.isfinite(ldst)
    assert (ldst[both] <= lsrc[both] + 1).all()
    has_parent = np.zeros(graph.num_vertices, dtype=bool)
    parent_ok = np.isfinite(lsrc) & (ldst == lsrc + 1)
    has_parent[graph.dst[parent_ok]] = True
    need_parent = finite & (levels > 0)
    assert has_parent[need_parent].all()


def _check_sssp(graph, dist, source=0):
    """Distances are the exact float32 Bellman-Ford fixpoint."""
    ref = sssp_distances(graph, source)
    np.testing.assert_array_equal(dist, ref)
    assert dist[source] == 0.0
    # No edge can still relax, and every finite non-source distance is
    # witnessed by some in-edge (a valid shortest-path parent).
    w = dist[graph.src] + graph.weights.astype(np.float32)
    relaxable = w.astype(np.float32) < dist[graph.dst]
    assert not relaxable.any()
    witnessed = np.zeros(graph.num_vertices, dtype=bool)
    exact = w.astype(np.float32) == dist[graph.dst]
    witnessed[graph.dst[exact & np.isfinite(w)]] = True
    need = np.isfinite(dist)
    need[source] = False
    assert witnessed[need].all()


@pytest.mark.parametrize("graph_name", FIXTURE_NAMES)
def test_direction_matrix_in_ram(graph_name):
    g = build(graph_name)
    weighted = g.with_random_weights(seed=33)
    for direction in DIRECTIONS:
        for backend in ("serial", "threads"):
            opts = _options(direction, backend)
            r = GraphReduce(g, options=opts).run(BFSGather(source=0))
            _check_bfs(g, r.vertex_values)
            s = GraphReduce(weighted, options=opts).run(SSSP(source=0))
            _check_sssp(weighted, s.vertex_values)


KERNEL_BACKENDS = (
    "off",
    "numpy",
    pytest.param(
        "numba",
        marks=pytest.mark.skipif(not numba_available(), reason="Numba not installed"),
    ),
)


@pytest.mark.parametrize("kernel_backend", KERNEL_BACKENDS)
@pytest.mark.parametrize("graph_name", CORE_GRAPHS)
def test_direction_matrix_kernel_backends(graph_name, kernel_backend):
    """Every direction stays bit-identical across fused-kernel backends.

    The direction controller feeds on frontier occupancy, so a fused
    activate that mis-counted would flip push/pull decisions; comparing
    full results (values + trajectory + timeline) against the
    kernels-off run on the same direction pins that down.
    """
    g = build(graph_name)
    weighted = g.with_random_weights(seed=33)
    for direction in DIRECTIONS:
        for graph, make in ((g, lambda: BFSGather(source=0)),
                            (weighted, lambda: SSSP(source=0))):
            ref = GraphReduce(
                graph, options=_options(direction, "serial", kernel_backend="off")
            ).run(make())
            fused = GraphReduce(
                graph,
                options=_options(direction, "serial", kernel_backend=kernel_backend),
            ).run(make())
            label = f"{direction}/{kernel_backend}"
            assert np.array_equal(fused.vertex_values, ref.vertex_values), label
            assert fused.frontier_history == ref.frontier_history, label
            assert fused.sim_time == ref.sim_time, label
            assert fused.direction_decisions == ref.direction_decisions, label


@pytest.mark.parametrize("graph_name", CORE_GRAPHS)
def test_direction_matrix_processes(graph_name):
    g = build(graph_name)
    weighted = g.with_random_weights(seed=33)
    for direction in DIRECTIONS:
        opts = _options(direction, "processes")
        r = GraphReduce(g, options=opts).run(BFSGather(source=0))
        _check_bfs(g, r.vertex_values)
        s = GraphReduce(weighted, options=opts).run(SSSP(source=0))
        _check_sssp(weighted, s.vertex_values)


@pytest.mark.parametrize("graph_name", CORE_GRAPHS)
def test_direction_matrix_shard_store(graph_name, tmp_path):
    g = build(graph_name)
    store = ShardStore.save(
        PartitionEngine().partition(g, 3), tmp_path / "store"
    )
    for direction in DIRECTIONS:
        for backend in ("serial", "threads", "processes"):
            opts = GraphReduceOptions(
                direction=direction, **BACKENDS[backend]
            )
            r = GraphReduce(shard_store=store, options=opts).run(
                BFSGather(source=0)
            )
            _check_bfs(g, r.vertex_values)


@pytest.mark.parametrize("graph_name", ("path300", "road10x10", "er_mid"))
def test_cc_pull_matches_push(graph_name):
    g = build(graph_name)
    sym = g if g.undirected else g.symmetrized()
    push = GraphReduce(sym, options=_options("push", "serial")).run(
        ConnectedComponents()
    )
    for direction in ("pull", "auto"):
        r = GraphReduce(sym, options=_options(direction, "serial")).run(
            ConnectedComponents()
        )
        np.testing.assert_array_equal(push.vertex_values, r.vertex_values)


# ----------------------------------------------------------------------
# Delta-stepping SSSP
# ----------------------------------------------------------------------
@pytest.mark.parametrize("graph_name", CORE_GRAPHS + ("er_mid", "two_cliques"))
def test_delta_sssp_matches_plain(graph_name):
    g = build(graph_name).with_random_weights(seed=33)
    base = GraphReduce(g, options=_options("push", "serial")).run(SSSP(source=0))
    for delta in (0.1, 0.5, 2.0, 100.0):
        r = GraphReduce(g, options=_options("push", "serial")).run(
            DeltaSSSP(source=0, delta=delta)
        )
        np.testing.assert_array_equal(base.vertex_values, r.vertex_values)
        assert r.converged
    _check_sssp(g, base.vertex_values)


def test_delta_sssp_defers_out_of_bucket_work():
    # A tiny bucket width forces reseeds: more iterations than plain
    # SSSP, strictly bucketed propagation, same distances.
    g = build("road10x10").with_random_weights(seed=7)
    plain = GraphReduce(g, options=_options("push", "serial")).run(SSSP(source=0))
    delta = GraphReduce(g, options=_options("push", "serial")).run(
        DeltaSSSP(source=0, delta=0.05)
    )
    np.testing.assert_array_equal(plain.vertex_values, delta.vertex_values)
    assert delta.iterations > plain.iterations


def test_delta_sssp_rejects_processes_backend():
    g = build("er_small").with_random_weights(seed=1)
    opts = GraphReduceOptions(
        num_partitions=3, parallel_shards=2, parallel_backend="processes"
    )
    with pytest.raises(ValueError, match="process_safe"):
        GraphReduce(g, options=opts).run(DeltaSSSP(source=0))


def test_delta_sssp_validates_delta():
    with pytest.raises(ValueError, match="delta"):
        DeltaSSSP(source=0, delta=0.0)


# ----------------------------------------------------------------------
# Guard rails
# ----------------------------------------------------------------------
def test_pull_rejected_for_push_only_program():
    g = build("er_small")
    for direction in ("pull", "auto"):
        opts = GraphReduceOptions(direction=direction)
        with pytest.raises(ValueError, match="pull-compatible"):
            GraphReduce(g, options=opts).run(BFS(source=0))


def test_unknown_direction_rejected():
    g = build("er_small")
    with pytest.raises(ValueError, match="direction"):
        GraphReduce(g, options=GraphReduceOptions(direction="sideways")).run(
            BFSGather(source=0)
        )


def test_controller_validates_thresholds():
    deg = np.ones(4, dtype=np.int64)
    with pytest.raises(ValueError, match="direction"):
        DirectionController("diagonal", deg, 4, 4)
    with pytest.raises(ValueError, match="positive"):
        DirectionController("auto", deg, 4, 4, alpha=0.0)


# ----------------------------------------------------------------------
# Sparse-plan bypass regression (the 0%-hit-rate BFS pathology)
# ----------------------------------------------------------------------
def test_sparse_bypass_pins_path_bfs():
    """BFS waves on a path never repeat; they must bypass the cache.

    Before the bypass every iteration's plan query was a miss (0% hit
    rate, ~2 misses per iteration) and the fast path *lost* to the slow
    path on traversal. Pin that every sparse wave skips the epoch/LRU
    machinery: misses stay bounded by a per-shard constant instead of
    growing with the iteration count.
    """
    g = build("path300")
    opts = GraphReduceOptions(num_partitions=3)
    r = GraphReduce(g, options=opts).run(BFS(source=0))
    assert r.iterations == 300
    pc = r.plan_cache
    assert pc["sparse_bypass"] > 0
    # Without the bypass this would be ~600 (two queries per iteration).
    assert pc["misses"] <= 2 * 3
    assert pc["hits"] + pc["misses"] + pc["sparse_bypass"] > 0


def test_sparse_bypass_can_be_disabled():
    g = build("path300")
    opts = GraphReduceOptions(num_partitions=3, sparse_bypass=False)
    r = GraphReduce(g, options=opts).run(BFS(source=0))
    assert r.plan_cache["sparse_bypass"] == 0
    assert r.plan_cache["misses"] > 100  # the old pathology, on demand
    base = GraphReduce(g, options=GraphReduceOptions(num_partitions=3)).run(
        BFS(source=0)
    )
    np.testing.assert_array_equal(r.vertex_values, base.vertex_values)


def test_sparse_bypass_leaves_dense_workloads_alone():
    # PageRank's steady state is a dense frontier: the bypass pre-check
    # must not fire (no bypass counts) and dense-plan hits must remain.
    from repro.algorithms import PageRank

    g = build("er_mid")
    r = GraphReduce(g, options=GraphReduceOptions(num_partitions=3)).run(
        PageRank(tolerance=None, max_iterations=8)
    )
    assert r.plan_cache["sparse_bypass"] == 0
    assert r.plan_cache["hits"] > 0


def test_procpool_aggregates_sparse_bypass():
    g = build("path300")
    opts = GraphReduceOptions(
        num_partitions=3, parallel_shards=2, parallel_backend="processes"
    )
    r = GraphReduce(g, options=opts).run(BFS(source=0))
    assert r.plan_cache["sparse_bypass"] > 0


# ----------------------------------------------------------------------
# The alpha/beta rule: recorded decisions replay it exactly
# ----------------------------------------------------------------------
def _replay(decisions, num_vertices, alpha, beta):
    """Re-run the hysteresis state machine from the recorded inputs."""
    state = "push"
    out = []
    for d in decisions:
        if state == "push" and d.frontier_edges > d.unexplored_edges / alpha:
            state = "pull"
        elif state == "pull" and d.frontier_size < num_vertices / beta:
            state = "push"
        out.append(state)
    return out


@pytest.mark.parametrize("graph_name", ("road10x10", "er_mid", "rmat_small"))
def test_auto_decisions_match_alpha_beta_rule(graph_name):
    g = build(graph_name)
    alpha, beta = 14.0, 24.0
    opts = GraphReduceOptions(
        num_partitions=3, direction="auto",
        direction_alpha=alpha, direction_beta=beta,
    )
    r = GraphReduce(g, options=opts).run(BFSGather(source=0))
    ds = r.direction_decisions
    assert [d.iteration for d in ds] == list(range(len(ds)))
    assert [d.direction for d in ds] == _replay(ds, g.num_vertices, alpha, beta)
    # The recorded inputs are consistent: unexplored edges only shrink
    # and frontier out-degree sums match the graph.
    unexplored = [d.unexplored_edges for d in ds]
    assert all(a >= b >= 0 for a, b in zip(unexplored, unexplored[1:]))
    assert unexplored[0] <= g.num_edges
    # IterationStats carry the same per-iteration direction.
    assert [s.direction for s in r.iteration_stats] == [d.direction for d in ds]


@given(
    kind=st.sampled_from(["er", "rmat", "grid"]),
    seed=st.integers(min_value=0, max_value=10_000),
    alpha=st.floats(min_value=1.0, max_value=64.0),
    beta=st.floats(min_value=1.0, max_value=64.0),
)
@settings(max_examples=12, deadline=None)
def test_auto_is_deterministic_and_replayable(kind, seed, alpha, beta):
    if kind == "er":
        g = erdos_renyi(180, 900, seed=seed)
    elif kind == "rmat":
        g = rmat(7, 800, seed=seed)
    else:
        g = grid_road(10, 10, 0.2, seed=seed)
    opts = GraphReduceOptions(
        num_partitions=3, direction="auto",
        direction_alpha=alpha, direction_beta=beta,
    )
    runs = [GraphReduce(g, options=opts).run(BFSGather(source=0)) for _ in range(2)]
    a, b = runs
    np.testing.assert_array_equal(a.vertex_values, b.vertex_values)
    assert [(d.iteration, d.direction, d.frontier_size, d.frontier_edges,
             d.unexplored_edges) for d in a.direction_decisions] == [
        (d.iteration, d.direction, d.frontier_size, d.frontier_edges,
         d.unexplored_edges) for d in b.direction_decisions
    ]
    assert [d.direction for d in a.direction_decisions] == _replay(
        a.direction_decisions, g.num_vertices, alpha, beta
    )
    push = GraphReduce(
        g, options=GraphReduceOptions(num_partitions=3)
    ).run(BFSGather(source=0))
    np.testing.assert_array_equal(a.vertex_values, push.vertex_values)
