"""Kernel layer unit tests (repro.core.kernels).

Covers the registry contract (backend resolution, missing-Numba
degradation with a single warning), the scratch arena (aligned,
grow-only, reuse-counted buffers), the layout helpers, and the
engine-level guarantees: a backend that *fails at runtime* must fall
back to the generic path with one RuntimeWarning and an unchanged
result, and (Numba only) the warm-up pass must absorb all JIT
compilation so timed iterations never compile.
"""

import warnings

import numpy as np
import pytest

from tests.fixture_graphs import build
from repro.algorithms import BFS, PageRank
from repro.core import kernels as registry
from repro.core.kernels import arena as arena_mod
from repro.core.kernels import layout
from repro.core.kernels import numba_available, resolve_backend
from repro.core.kernels.numpy_backend import NumpyKernels
from repro.core.runtime import GraphReduce, GraphReduceOptions


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_resolve_off_returns_none():
    assert resolve_backend("off") is None


def test_resolve_numpy():
    backend = resolve_backend("numpy")
    assert isinstance(backend, NumpyKernels)
    assert backend.name == "numpy"


def test_resolve_unknown_rejected():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_backend("fortran")


def test_auto_without_numba_is_silent_numpy(monkeypatch):
    monkeypatch.setattr(registry, "numba_available", lambda: False)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any warning fails the test
        backend = registry.resolve_backend("auto")
    assert isinstance(backend, NumpyKernels)


def test_numba_without_numba_warns_once_and_degrades(monkeypatch):
    monkeypatch.setattr(registry, "numba_available", lambda: False)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        backend = registry.resolve_backend("numba")
    assert isinstance(backend, NumpyKernels)
    relevant = [w for w in caught if issubclass(w.category, RuntimeWarning)]
    assert len(relevant) == 1
    assert "falling back to the NumPy backend" in str(relevant[0].message)


@pytest.mark.skipif(not numba_available(), reason="Numba not installed")
def test_resolve_numba_when_available():
    backend = resolve_backend("numba")
    assert backend.name == "numba"
    assert resolve_backend("auto").name == "numba"


# ----------------------------------------------------------------------
# Layout helpers
# ----------------------------------------------------------------------
def test_aligned_allocators():
    for n in (0, 1, 7, 64, 1000):
        buf = layout.aligned_empty(n, np.float32)
        assert buf.size == n and buf.dtype == np.float32
        assert layout.is_aligned(buf)
    ones = layout.aligned_ones(17, np.float32)
    assert layout.is_aligned(ones) and (ones == 1.0).all()
    zeros = layout.aligned_zeros(17, np.int64)
    assert layout.is_aligned(zeros) and not zeros.any()


def test_aligned_copy_preserves_values():
    src = np.arange(13, dtype=np.float32)[1:]  # deliberately unaligned view
    cp = layout.aligned_copy(src)
    assert layout.is_aligned(cp)
    np.testing.assert_array_equal(cp, src)
    cp[0] = -1.0  # a real copy, not a view
    assert src[0] == 1.0


# ----------------------------------------------------------------------
# Scratch arena
# ----------------------------------------------------------------------
def test_arena_reuses_and_grows():
    arena = arena_mod.ScratchArena()
    a = arena.get("k", 100, np.float32)
    assert a.size == 100 and layout.is_aligned(a)
    assert (arena.allocations, arena.reuses) == (1, 0)
    # Same key, smaller request: a view of the cached buffer, no alloc.
    b = arena.get("k", 40, np.float32)
    assert b.base is a.base or b.base is a  # same backing storage
    assert (arena.allocations, arena.reuses) == (1, 1)
    # Growth replaces the buffer (with slack) and counts an allocation.
    c = arena.get("k", 500, np.float32)
    assert c.size == 500
    assert arena.allocations == 2
    # Distinct dtypes under one key get distinct slots.
    d = arena.get("k", 40, np.int64)
    assert d.dtype == np.int64 and arena.allocations == 3
    assert arena.held_bytes > 0
    stats = arena.stats()
    assert stats["allocations"] == 3 and stats["reuses"] == 1
    arena.clear()
    assert arena.held_bytes == 0


def test_arena_slack_absorbs_ragged_sizes():
    arena = arena_mod.ScratchArena()
    arena.get("k", 100, np.float32)
    # Anything within the growth slack reuses instead of reallocating.
    arena.get("k", int(100 * arena_mod.GROWTH_SLACK) - 1, np.float32)
    assert arena.allocations == 1 and arena.reuses == 1


# ----------------------------------------------------------------------
# Engine integration: stats surfacing and runtime-failure fallback
# ----------------------------------------------------------------------
def _run(graph, program, **opts):
    return GraphReduce(
        graph, options=GraphReduceOptions(num_partitions=3, **opts)
    ).run(program)


def test_result_surfaces_kernel_stats_with_arena_reuse():
    g = build("er_small")
    result = _run(g, PageRank(tolerance=1e-3), kernel_backend="numpy")
    k = result.kernels
    assert k is not None and k["backend"] == "numpy"
    assert k["fused_calls"] > 0 and k["fallbacks"] == 0
    # Steady-state iterations borrow from the arena instead of
    # allocating (the satellite fix this layer exists for).
    assert k["reuses"] > k["allocations"]
    off = _run(g, PageRank(tolerance=1e-3), kernel_backend="off")
    assert off.kernels is None


def test_runtime_failure_falls_back_with_single_warning(monkeypatch):
    g = build("er_small")
    reference = _run(g, PageRank(tolerance=1e-3), kernel_backend="off")

    def explode(self, *args, **kwargs):
        raise RuntimeError("injected kernel failure")

    monkeypatch.setattr(NumpyKernels, "gather_segments", explode)
    monkeypatch.setattr(NumpyKernels, "gather_rows", explode)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = _run(g, PageRank(tolerance=1e-3), kernel_backend="numpy")
    relevant = [
        w for w in caught
        if issubclass(w.category, RuntimeWarning)
        and "falling back to the generic NumPy path" in str(w.message)
    ]
    assert len(relevant) == 1  # fusion disabled after the first failure
    assert np.array_equal(result.vertex_values, reference.vertex_values)
    assert result.frontier_history == reference.frontier_history
    assert result.sim_time == reference.sim_time
    assert result.kernels is not None
    assert result.kernels["fallbacks"] >= 1


def test_int_valued_program_skips_fusion_without_warning():
    # BFS computes in float32 but this exercises the spec-gating path:
    # programs without trustworthy f32 specs run generic with a counted
    # (not warned) fallback. ConnectedComponents-style int programs and
    # subclass overrides are covered by the matrix tests; here we just
    # pin that *no* RuntimeWarning escapes a normal gated run.
    g = build("er_small")
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        result = _run(g, BFS(source=0), kernel_backend="numpy")
    assert result.kernels is not None


# ----------------------------------------------------------------------
# Numba: equivalence + warm-up hygiene
# ----------------------------------------------------------------------
@pytest.mark.skipif(not numba_available(), reason="Numba not installed")
def test_numba_identical_and_no_compilation_after_warmup():
    from repro.core.kernels import numba_backend

    g = build("er_mid")
    reference = _run(g, PageRank(tolerance=1e-3), kernel_backend="off")
    warm = _run(g, PageRank(tolerance=1e-3), kernel_backend="numba")
    assert np.array_equal(warm.vertex_values, reference.vertex_values)
    assert warm.frontier_history == reference.frontier_history
    assert warm.sim_time == reference.sim_time
    assert warm.kernels["backend"] == "numba"
    assert warm.kernels["fallbacks"] == 0
    # Warm-up hygiene: the run above compiled every specialization this
    # workload needs; a repeat run must not trigger new compilation
    # (same contract bench-wallclock relies on for its timed repeats).
    signatures = [len(d.signatures) for d in numba_backend.DISPATCHERS]
    again = _run(g, PageRank(tolerance=1e-3), kernel_backend="numba")
    assert np.array_equal(again.vertex_values, reference.vertex_values)
    after = [len(d.signatures) for d in numba_backend.DISPATCHERS]
    assert after == signatures, "timed-style repeat compiled new kernels"
