"""Host fast-path equivalence and plan-cache unit tests.

The dense-frontier kernels, the gather-plan cache and parallel shard
compute are pure host-side rewrites: every combination must produce
bit-identical vertex values, the same frontier trajectory, the same
simulated timeline and the same WorkItems censuses as the slow path on
every fixture graph. The second half unit-tests the PlanCache itself
(hit/miss/invalidation accounting, epoch freshness, dense plan reuse)
and the FrontierManager machinery it leans on.
"""

import numpy as np
import pytest

from tests.fixture_graphs import FIXTURE_NAMES, build
from repro.algorithms import BFS, ConnectedComponents, PageRank, SSSP
from repro.core.frontier import FrontierManager
from repro.core.kernels import numba_available
from repro.core.partition import PartitionEngine
from repro.core.plans import PlanCache
from repro.core.runtime import GraphReduce, GraphReduceOptions, RuntimeContext
from repro.graph.edgelist import EdgeList


class EdgeStampingSSSP(SSSP):
    """SSSP that also broadcasts distances onto its out-edges.

    Gives the matrix a program with a real scatter phase and edge
    state, so the *full* out-plan path (eids/weights/row_ids columns)
    is exercised, not just the frontier-activate lite plan.
    """

    edge_dtype = np.float32

    def scatter(self, ctx, src_ids, src_vals, weights, edge_states):
        return src_vals + weights


PROGRAMS = {
    "bfs": lambda: BFS(source=0),
    "sssp": lambda: SSSP(source=0),
    "pagerank": lambda: PageRank(tolerance=1e-3),
    "pagerank_power": lambda: PageRank(tolerance=None, max_iterations=12),
    "cc": lambda: ConnectedComponents(),
    "stamping_sssp": lambda: EdgeStampingSSSP(source=0),
}

#: every fast path alone, then everything at once; the kernels_* pair
#: pins the fused-kernel axis explicitly (COMBOS above inherit the
#: "auto" default, which resolves to the NumPy backend without Numba).
COMBOS = {
    "dense_only": dict(dense_fast_path=True, plan_cache=False, parallel_shards=0),
    "cache_only": dict(dense_fast_path=False, plan_cache=True, parallel_shards=0),
    "parallel_only": dict(dense_fast_path=False, plan_cache=False, parallel_shards=3),
    "all_on": dict(dense_fast_path=True, plan_cache=True, parallel_shards=3),
    "kernels_off": dict(
        dense_fast_path=True, plan_cache=True, parallel_shards=0, kernel_backend="off"
    ),
    "kernels_numpy": dict(
        dense_fast_path=True, plan_cache=True, parallel_shards=0, kernel_backend="numpy"
    ),
}
SLOW = dict(dense_fast_path=False, plan_cache=False, parallel_shards=0)


def _run(g, make_program, fastpath):
    opts = GraphReduceOptions(num_partitions=3, **fastpath)
    return GraphReduce(g, options=opts).run(make_program())


def _kernel_items(result):
    return {
        name: c.value
        for name, c in result.observer.metrics.counters.items()
        if name.startswith(("compute.", "frontier."))
    }


@pytest.mark.parametrize("graph_name", FIXTURE_NAMES)
def test_fastpath_combos_match_slow_path(graph_name):
    g = build(graph_name)
    weighted = g.with_random_weights(seed=33)
    for algo, make_program in PROGRAMS.items():
        graph = weighted if "sssp" in algo else g
        slow = _run(graph, make_program, SLOW)
        assert slow.plan_cache is None  # fully disabled cache reports nothing
        for combo, fastpath in COMBOS.items():
            fast = _run(graph, make_program, fastpath)
            label = f"{algo}/{combo}"
            assert np.array_equal(fast.vertex_values, slow.vertex_values), label
            assert fast.frontier_history == slow.frontier_history, label
            assert fast.sim_time == slow.sim_time, label
            assert fast.iterations == slow.iterations, label
            assert fast.converged == slow.converged, label
            # Same simulated kernels: identical edge/vertex censuses and
            # frontier traffic, phase by phase.
            assert _kernel_items(fast) == _kernel_items(slow), label


@pytest.mark.skipif(not numba_available(), reason="Numba not installed")
@pytest.mark.parametrize("graph_name", FIXTURE_NAMES)
def test_numba_backend_matches_slow_path(graph_name):
    """The compiled backend is held to the same bit-identity contract."""
    g = build(graph_name)
    weighted = g.with_random_weights(seed=33)
    combo = dict(
        dense_fast_path=True, plan_cache=True, parallel_shards=0, kernel_backend="numba"
    )
    for algo, make_program in PROGRAMS.items():
        graph = weighted if "sssp" in algo else g
        slow = _run(graph, make_program, SLOW)
        fast = _run(graph, make_program, combo)
        label = f"{algo}/numba"
        assert np.array_equal(fast.vertex_values, slow.vertex_values), label
        assert fast.frontier_history == slow.frontier_history, label
        assert fast.sim_time == slow.sim_time, label
        assert fast.iterations == slow.iterations, label
        assert fast.converged == slow.converged, label
        assert _kernel_items(fast) == _kernel_items(slow), label
        assert fast.kernels is not None and fast.kernels["backend"] == "numba", label
        assert fast.kernels["fallbacks"] == 0, label


# Out-of-core: the same matrix, but the graph lives in an on-disk shard
# store. One warm config (prefetch threads + every host fast path) and
# one deliberately starved config (1-shard cache, no warming threads)
# must both be bit-identical to the in-RAM slow path.
STORE_COMBOS = {
    "prefetch_on": dict(dense_fast_path=True, plan_cache=True, parallel_shards=3),
    "cold_budget1": dict(memory_budget=1, host_prefetch=False),
}


@pytest.mark.parametrize("graph_name", FIXTURE_NAMES)
def test_store_runs_match_in_ram(graph_name, tmp_path):
    from repro.core.shardstore import ShardStore

    g = build(graph_name)
    stores = {
        label: ShardStore.save(PartitionEngine().partition(graph, 3), tmp_path / label)
        for label, graph in (("plain", g), ("weighted", g.with_random_weights(seed=33)))
    }
    for algo, make_program in PROGRAMS.items():
        needs_weights = "sssp" in algo
        graph = g.with_random_weights(seed=33) if needs_weights else g
        slow = _run(graph, make_program, SLOW)
        store = stores["weighted" if needs_weights else "plain"]
        for combo, extra in STORE_COMBOS.items():
            opts = GraphReduceOptions(num_partitions=3, **extra)
            ooc = GraphReduce(shard_store=store, options=opts).run(make_program())
            label = f"{algo}/{combo}"
            assert np.array_equal(ooc.vertex_values, slow.vertex_values), label
            assert ooc.frontier_history == slow.frontier_history, label
            assert ooc.sim_time == slow.sim_time, label
            assert ooc.iterations == slow.iterations, label
            assert ooc.converged == slow.converged, label
            assert _kernel_items(ooc) == _kernel_items(slow), label
            assert ooc.prefetch is not None, label


def test_power_iteration_pagerank_stays_dense():
    g = build("er_mid")
    result = _run(
        g, lambda: PageRank(tolerance=None, max_iterations=10),
        dict(dense_fast_path=True, plan_cache=True, parallel_shards=0),
    )
    n = g.num_vertices
    # always_active: the frontier is the whole vertex set every round,
    # so after the compulsory first builds every plan query hits.
    assert result.iterations == 10
    assert all(size == n for size in result.frontier_history[:-1])
    stats = result.plan_cache
    assert stats["invalidations"] == 0
    assert stats["hit_rate"] > 0.9, stats


# ----------------------------------------------------------------------
# PlanCache unit tests on a hand-built sharded graph
# ----------------------------------------------------------------------
def _make(pairs, n, p=2, dense=True, cache=True, initial=None):
    edges = EdgeList.from_pairs(pairs, num_vertices=n)
    sharded = PartitionEngine().partition(edges, p)
    init = np.ones(n, dtype=bool) if initial is None else initial
    frontier = FrontierManager(sharded, init)
    plans = PlanCache(sharded, frontier, dense=dense, cache=cache)
    return sharded, frontier, plans


PAIRS = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 0), (1, 3)]


def test_gather_plan_matches_slow_path_build():
    sharded, frontier, plans = _make(PAIRS, 4, p=2)
    _, _, off = _make(PAIRS, 4, p=2, dense=False, cache=False)
    for shard in sharded.shards:
        fast, slow = plans.gather_plan(shard), off.gather_plan(shard)
        assert fast.dense and not slow.dense
        np.testing.assert_array_equal(fast.indices, slow.indices)
        np.testing.assert_array_equal(fast.eids, slow.eids)
        np.testing.assert_array_equal(fast.row_ids, slow.row_ids)
        np.testing.assert_array_equal(fast.starts, slow.starts)
        np.testing.assert_array_equal(fast.verts, slow.verts)
        assert fast.n_edges == slow.n_edges


def test_hit_miss_invalidation_accounting():
    sharded, frontier, plans = _make(
        PAIRS, 4, p=1, initial=np.array([True, False, True, False])
    )
    shard = sharded.shards[0]
    plans.gather_plan(shard)  # compulsory build
    plans.gather_plan(shard)  # same epoch -> hit
    assert (plans.hits, plans.misses, plans.invalidations) == (1, 1, 0)
    # An epoch bump with an unchanged row set revalidates (array_equal)
    # and counts as a hit; the entry is reused by identity afterwards.
    frontier.invalidate_plans()
    plans.gather_plan(shard)
    assert (plans.hits, plans.misses, plans.invalidations) == (2, 1, 0)
    # Growing the frontier rebuilds and retires the stale plan.
    frontier.current[1] = True
    frontier.invalidate_plans()
    plans.gather_plan(shard)
    assert (plans.hits, plans.misses, plans.invalidations) == (2, 2, 1)
    stats = plans.stats()
    assert stats["hits"] == 2 and stats["misses"] == 2
    assert stats["hit_rate"] == pytest.approx(0.5)


def test_dense_plans_are_reused_by_identity():
    sharded, frontier, plans = _make(PAIRS, 4, p=2)
    shard = sharded.shards[0]
    first = plans.gather_plan(shard)
    frontier.advance()  # epoch bump; mask re-densified by activate_all
    frontier.activate_all()
    assert plans.gather_plan(shard) is first  # topology-static plan
    rows, dense = plans.active_rows(shard)
    assert dense
    np.testing.assert_array_equal(rows, np.arange(shard.start, shard.stop))


def test_dense_out_plan_targets_mask():
    sharded, frontier, plans = _make(PAIRS, 4, p=2)
    frontier.changed[:] = True
    frontier.invalidate_plans()
    for shard in sharded.shards:
        plan = plans.out_plan(shard, full=True)
        assert plan.dense and plan.full
        expected = np.zeros(sharded.num_vertices, dtype=bool)
        expected[shard.csr.indices] = True
        np.testing.assert_array_equal(plan.targets, expected)
        # A later lite query is served by the same full plan.
        assert plans.out_plan(shard, full=False) is plan


def test_disabled_cache_never_counts():
    sharded, frontier, plans = _make(PAIRS, 4, p=1, dense=False, cache=False)
    shard = sharded.shards[0]
    assert not plans.enabled
    for _ in range(3):
        plans.gather_plan(shard)
        plans.out_plan(shard)
        plans.active_rows(shard)
    assert (plans.hits, plans.misses, plans.invalidations) == (0, 0, 0)


# ----------------------------------------------------------------------
# FrontierManager machinery the cache depends on
# ----------------------------------------------------------------------
class _Intervals:
    """Stand-in sharded graph: boundaries only (incl. empty intervals)."""

    def __init__(self, boundaries):
        self.boundaries = np.asarray(boundaries, dtype=np.int64)
        self.num_vertices = int(self.boundaries[-1])
        self.num_partitions = len(boundaries) - 1


def test_counts_per_shard_with_empty_intervals():
    fm = FrontierManager(_Intervals([0, 2, 2, 5, 5, 6]), np.ones(6, dtype=bool))
    mask = np.array([True, False, True, True, False, True])
    np.testing.assert_array_equal(fm.counts_per_shard(mask), [1, 0, 2, 0, 1])
    np.testing.assert_array_equal(fm.counts_per_shard(np.zeros(6, bool)), [0] * 5)


def test_shards_of_single_and_multi_interval():
    fm = FrontierManager(_Intervals([0, 2, 2, 5, 5, 6]), np.ones(6, dtype=bool))
    # All vids inside one interval: the O(log P) early exit.
    np.testing.assert_array_equal(fm._shards_of(np.array([2, 4])), [2])
    # Spanning intervals, skipping the empty ones.
    np.testing.assert_array_equal(fm._shards_of(np.array([0, 3, 5])), [0, 2, 4])
    np.testing.assert_array_equal(fm._shards_of(np.array([5])), [4])


def test_activate_next_mask_equals_vids_form():
    init = np.ones(6, dtype=bool)
    a = FrontierManager(_Intervals([0, 3, 6]), init)
    b = FrontierManager(_Intervals([0, 3, 6]), init)
    vids = np.array([1, 4, 5])
    mask = np.zeros(6, dtype=bool)
    mask[vids] = True
    a.activate_next(vids)
    b.activate_next_mask(mask, count=7)
    np.testing.assert_array_equal(a.next, b.next)
    # Concurrent-composition shape: a masked store only writes True
    # positions, so a prior scatter survives.
    b.activate_next(np.array([0]))
    b.activate_next_mask(mask, count=7)
    assert b.next[0]


def test_epoch_bumps_on_mask_mutations():
    sharded, frontier, _ = _make(PAIRS, 4, p=2)
    before = frontier.changed_epochs.copy()
    frontier.mark_changed(np.array([3]))  # second shard only
    assert frontier.changed_epochs[1] > before[1]
    assert frontier.changed_epochs[0] == before[0]
    a_before = frontier.active_epochs.copy()
    frontier.advance()
    assert (frontier.active_epochs > a_before).all()
    assert (frontier.changed_epochs > before).all()
    frontier.activate_all()
    assert frontier.current.all()
