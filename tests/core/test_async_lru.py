"""Asynchronous execution mode, LRU shard caching, iteration stats."""

import numpy as np
import pytest

from repro.algorithms import BFS, BFSGather, ConnectedComponents, PageRank, SSSP
from repro.core.fusion import build_async_plan
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.graph.generators import erdos_renyi, mesh2d, rmat
from repro.sim.specs import DeviceSpec, MachineSpec


class TestAsyncMode:
    def test_async_plan_is_one_fused_sweep(self):
        plan = build_async_plan(SSSP())
        assert len(plan) == 1
        group = plan[0]
        assert group.phases == ("gather_map", "gather_reduce", "apply", "frontier_activate")
        assert "in_topology" in group.h2d_buffers
        assert "out_topology" in group.h2d_buffers
        assert group.scratch_buffers == ("edge_update_array",)

    def test_async_plan_bfs(self):
        plan = build_async_plan(BFS())
        assert plan[0].phases == ("apply", "frontier_activate")
        assert plan[0].h2d_buffers == ("out_topology",)

    @pytest.mark.parametrize("prog_factory", [
        lambda: BFSGather(source=1),
        lambda: SSSP(source=1),
        lambda: ConnectedComponents(),
    ])
    def test_monotone_programs_reach_same_fixed_point(self, prog_factory):
        g = rmat(9, 5_000, seed=51).symmetrized()
        bsp = GraphReduce(g).run(prog_factory())
        as_ = GraphReduce(
            g, options=GraphReduceOptions(execution_mode="async")
        ).run(prog_factory())
        np.testing.assert_array_equal(as_.vertex_values, bsp.vertex_values)

    def test_async_converges_in_no_more_sweeps(self):
        # Label propagation across a long path: async sweeps flow labels
        # through many shards per sweep, BSP one hop per iteration.
        from repro.graph.generators import path_graph

        g = path_graph(400).symmetrized()
        bsp = GraphReduce(g).run(ConnectedComponents())
        as_ = GraphReduce(
            g,
            options=GraphReduceOptions(execution_mode="async", num_partitions=8,
                                       cache_policy="never"),
        ).run(ConnectedComponents())
        assert np.array_equal(as_.vertex_values, bsp.vertex_values)
        assert as_.iterations < bsp.iterations

    def test_pagerank_gauss_seidel_same_ranks(self):
        g = rmat(9, 4_000, seed=52).symmetrized()
        bsp = GraphReduce(g).run(PageRank(tolerance=1e-6))
        as_ = GraphReduce(
            g, options=GraphReduceOptions(execution_mode="async")
        ).run(PageRank(tolerance=1e-6))
        np.testing.assert_allclose(
            as_.vertex_values, bsp.vertex_values, rtol=1e-3, atol=1e-4
        )
        assert as_.iterations <= bsp.iterations

    def test_unknown_mode_rejected(self):
        g = erdos_renyi(20, 50, seed=53)
        with pytest.raises(ValueError, match="execution_mode"):
            GraphReduce(
                g, options=GraphReduceOptions(execution_mode="speculative")
            ).run(BFS())


class TestLRUCache:
    def machine(self, memory):
        return MachineSpec(device=DeviceSpec(memory_bytes=memory))

    def test_lru_results_identical(self):
        g = rmat(11, 40_000, seed=54)
        base = GraphReduce(g).run(PageRank(tolerance=1e-3))
        lru = GraphReduce(
            g, options=GraphReduceOptions(cache_policy="lru")
        ).run(PageRank(tolerance=1e-3))
        assert np.array_equal(base.vertex_values, lru.vertex_values)

    def test_lru_beats_never_when_graph_almost_fits(self):
        g = rmat(11, 40_000, seed=54)
        opts_never = GraphReduceOptions(cache_policy="never")
        opts_lru = GraphReduceOptions(cache_policy="lru")
        never = GraphReduce(g, options=opts_never).run(PageRank(tolerance=1e-3))
        lru = GraphReduce(g, options=opts_lru).run(PageRank(tolerance=1e-3))
        assert lru.stats.h2d_bytes < never.stats.h2d_bytes
        assert lru.stats.cache_hits > 0
        assert lru.sim_time < never.sim_time

    def test_lru_evicts_when_working_set_moves(self):
        # A BFS wavefront over a banded graph: early shards go cold as
        # the frontier advances, so the cache recycles their space.
        # Eviction requires genuine coldness (two untouched iterations)
        # -- the anti-thrash rule -- which a moving wavefront provides.
        from repro.graph.generators import banded

        g = banded(3_000, 60, 8, seed=55)
        fp_machine = self.machine(500_000)
        r = GraphReduce(
            g,
            machine=fp_machine,
            options=GraphReduceOptions(cache_policy="lru", num_partitions=12),
        ).run(BFS(source=0))
        assert r.stats.cache_evictions > 0
        base = GraphReduce(g).run(BFS(source=0))
        assert np.array_equal(r.vertex_values, base.vertex_values)

    def test_lru_never_worse_than_streaming_on_cyclic_access(self):
        # Cyclic all-active access with a cache smaller than the working
        # set must not thrash: the cached prefix stays, the rest streams.
        g = rmat(12, 120_000, seed=55)
        fp_machine = self.machine(3_500_000)
        lru = GraphReduce(
            g,
            machine=fp_machine,
            options=GraphReduceOptions(cache_policy="lru", num_partitions=10),
        ).run(PageRank(tolerance=1e-3))
        never = GraphReduce(
            g,
            machine=fp_machine,
            options=GraphReduceOptions(cache_policy="never", num_partitions=10),
        ).run(PageRank(tolerance=1e-3))
        assert np.array_equal(lru.vertex_values, never.vertex_values)
        assert lru.stats.h2d_bytes <= never.stats.h2d_bytes * 1.05


class TestIterationStats:
    def test_stats_cover_every_iteration(self):
        g = erdos_renyi(200, 1_000, seed=56)
        r = GraphReduce(
            g, options=GraphReduceOptions(cache_policy="never")
        ).run(BFS(source=0))
        assert len(r.iteration_stats) == r.iterations
        assert [s.iteration for s in r.iteration_stats] == list(range(r.iterations))
        # Frontier sizes in stats match the frontier history.
        assert [s.frontier_size for s in r.iteration_stats] == r.frontier_history[: r.iterations]

    def test_traffic_sums_match_totals(self):
        g = erdos_renyi(200, 1_000, seed=56)
        r = GraphReduce(
            g, options=GraphReduceOptions(cache_policy="never")
        ).run(PageRank(tolerance=1e-3))
        # Per-iteration h2d sums to the total minus the resident upload.
        per_iter = sum(s.h2d_bytes for s in r.iteration_stats)
        assert 0 < per_iter <= r.stats.h2d_bytes
        assert sum(s.sim_seconds for s in r.iteration_stats) <= r.sim_time + 1e-12

    def test_low_activity_iterations_move_less(self):
        g = rmat(10, 20_000, seed=57)
        r = GraphReduce(
            g, options=GraphReduceOptions(cache_policy="never")
        ).run(BFS(source=int(np.argmax(g.out_degrees()))))
        stats = r.iteration_stats
        peak = max(s.frontier_size for s in stats)
        big = [s.h2d_bytes for s in stats if s.frontier_size == peak]
        small = [s.h2d_bytes for s in stats if s.frontier_size == 1]
        assert min(big) >= max(small)
