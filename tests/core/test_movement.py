"""Data Movement Engine: Eq (1)/(2), spray, caching, staging."""

import pytest

from repro.core.movement import (
    DataMovementEngine,
    MovementConfig,
    optimal_concurrent_shards,
)
from repro.core.fusion import PhaseGroup
from repro.core.partition import PartitionEngine
from repro.core.compute import WorkItems
from repro.graph.generators import erdos_renyi
from repro.sim.device import GPUDevice
from repro.sim.engine import Simulator
from repro.sim.specs import DeviceSpec


def make_engine(p=4, async_streams=True, spray=True, memory=None, n=60, m=400):
    g = erdos_renyi(n, m, seed=1)
    sharded = PartitionEngine().partition(g, p)
    sim = Simulator()
    spec = DeviceSpec() if memory is None else DeviceSpec(memory_bytes=memory)
    device = GPUDevice(sim, spec)
    engine = DataMovementEngine(
        device,
        sharded,
        MovementConfig(async_streams=async_streams, spray=spray),
        with_weights=False,
        with_edge_state=False,
    )
    return engine, sharded, device


class TestEquation1:
    def test_k_grows_with_memory(self):
        k_small = optimal_concurrent_shards(1000, 0, 100, 400, 100, 32)
        k_large = optimal_concurrent_shards(4000, 0, 100, 400, 100, 32)
        assert k_large > k_small

    def test_k_at_least_one(self):
        assert optimal_concurrent_shards(10, 0, 100, 400, 100, 32) == 1

    def test_k_clamped_by_partitions_and_hardware(self):
        assert optimal_concurrent_shards(10**9, 0, 1, 1, 3, 32) == 3
        assert optimal_concurrent_shards(10**9, 0, 1, 1, 100, 32) == 32

    def test_paper_configuration_gives_two(self):
        """The paper's K20c estimate: K ~= 2 concurrent shards.

        4.8 GB device, ~200 MB resident vertex data, shards sized to
        saturate PCIe (~1.5 GB streaming buffers per shard)."""
        k = optimal_concurrent_shards(
            device_memory=int(4.8e9),
            resident_bytes=int(0.2e9),
            interval_bytes=int(0.05e9),
            shard_bytes=int(1.5e9),
            num_partitions=8,
        )
        assert k == 2

    def test_resident_subtracted(self):
        base = optimal_concurrent_shards(10_000, 0, 100, 900, 100, 32)
        less = optimal_concurrent_shards(10_000, 5000, 100, 900, 100, 32)
        assert less < base


class TestEngine:
    def test_sync_mode_uses_one_stream(self):
        engine, _, _ = make_engine(async_streams=False)
        assert engine.k == 1
        assert len(engine.streams) == 1

    def test_async_mode_uses_multiple_streams(self):
        engine, sharded, _ = make_engine(p=4)
        assert engine.k > 1
        assert len(engine.streams) == engine.k

    def test_upload_resident_allocates_and_copies(self):
        engine, _, device = make_engine()
        engine.upload_resident({"vertex_values": 1000, "flags": 100})
        assert device.memory.allocated == 1100
        assert engine.stats.h2d_bytes == 1100
        assert device.trace.total_amount("h2d") == 1100

    def test_reserve_stage_slots_shrinks_k_when_tight(self):
        engine, sharded, device = make_engine(p=4)
        max_bytes = sharded.max_shard_bytes(False, False)
        # Fill memory so only ~1 slot fits.
        device.memory.alloc("hog", device.memory.capacity - max_bytes - 1000)
        k = engine.reserve_stage_slots()
        assert k == 1

    def test_cache_all_shards_fits(self):
        engine, sharded, device = make_engine()
        assert engine.cache_all_shards()
        assert engine.cached
        total = sum(s.total_bytes(False, False) for s in sharded.shards)
        assert device.trace.total_amount("h2d") == total

    def test_cache_all_shards_too_big(self):
        engine, sharded, device = make_engine(memory=6000)
        assert not engine.cache_all_shards()
        assert not engine.cached
        assert device.trace.total_amount("h2d") == 0

    def _group(self):
        return PhaseGroup(
            "gather",
            ("gather_map", "gather_reduce"),
            "active",
            ("in_topology",),
            (),
        )

    def test_run_phase_moves_selected_buffers_only(self):
        engine, sharded, device = make_engine(spray=False)
        shard = sharded.shards[0]
        engine.run_phase(self._group(), [shard], 3, lambda s: WorkItems(10, 5))
        sizes = shard.buffer_bytes(False, False)
        assert engine.stats.h2d_bytes == sizes["in_topology"]
        assert engine.stats.d2h_bytes == 0
        assert engine.stats.kernel_launches == 1
        assert engine.stats.shards_skipped == 3
        assert engine.stats.shards_processed == 1

    def test_run_phase_cached_moves_nothing(self):
        engine, sharded, device = make_engine()
        engine.cache_all_shards()
        before = engine.stats.h2d_bytes
        engine.run_phase(self._group(), list(sharded.shards), 0, lambda s: WorkItems(10, 5))
        assert engine.stats.h2d_bytes == before
        assert engine.stats.kernel_launches == len(sharded.shards)

    def test_spray_creates_extra_streams(self):
        engine, sharded, device = make_engine(spray=True)
        group = PhaseGroup(
            "gather",
            ("gather_map",),
            "active",
            ("in_topology", "edge_update_array", "vertex_update_array"),
            (),
        )
        n_before = len(device.streams)
        engine.run_phase(group, [sharded.shards[0]], 0, lambda s: WorkItems(10, 0))
        assert len(device.streams) > n_before  # spray streams spawned

    def test_spray_faster_than_serial_copies(self):
        """Spraying a multi-buffer shard beats one-stream serial copies."""
        group = PhaseGroup(
            "x",
            ("apply",),
            "active",
            ("in_topology", "out_topology", "edge_update_array", "vertex_update_array"),
            (),
        )
        times = {}
        for spray in (False, True):
            engine, sharded, device = make_engine(
                p=1, spray=spray, async_streams=False, n=2000, m=20000
            )
            engine.run_phase(group, [sharded.shards[0]], 0, lambda s: WorkItems(1, 0))
            times[spray] = device.sim.now
        assert times[True] < times[False]

    def test_d2h_spray_waits_for_kernel(self):
        engine, sharded, device = make_engine(p=1, spray=True, n=500, m=5000)
        group = PhaseGroup(
            "w",
            ("apply",),
            "active",
            (),
            ("edge_update_array", "vertex_update_array"),
        )
        engine.run_phase(group, [sharded.shards[0]], 0, lambda s: WorkItems(10_000_000, 0))
        kernel_end = max(i.end for i in device.trace.intervals if i.category == "kernel")
        d2h_starts = [i.start for i in device.trace.intervals if i.category == "d2h"]
        assert all(s >= kernel_end - 1e-12 for s in d2h_starts)

    def test_iteration_sync_counts(self):
        engine, _, device = make_engine()
        engine.iteration_sync(64)
        assert engine.stats.d2h_bytes == 64
        assert device.trace.total_amount("d2h") == 64
