"""Shard-store format, streaming external partitioner, host prefetcher.

Three layers of the out-of-core stack, bottom up: the on-disk directory
format must round-trip a ``ShardedGraph`` bit-for-bit; the streaming
builder must produce byte-identical stores to the in-RAM
``ShardStore.save`` path (global edge ids included); and the
``HostPrefetcher``'s cache accounting -- capacity, LRU eviction order,
frontier-skip suppression, hit/wait/fault attribution -- must match its
documented contract, since ``repro profile`` and the bench gate report
those numbers as facts.
"""

import json
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from tests.fixture_graphs import build
from repro.algorithms import PageRank
from repro.core.movement import HostPrefetcher
from repro.core.partition import PartitionEngine
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.core.shardstore import (
    MANIFEST,
    ShardStore,
    build_store_streaming,
)
from repro.graph.io import save_edgelist_txt, save_npz


def _store(tmp_path, graph, p=3, name="store"):
    return ShardStore.save(PartitionEngine().partition(graph, p), tmp_path / name)


# ----------------------------------------------------------------------
# Directory format round-trip
# ----------------------------------------------------------------------
class TestShardStoreFormat:
    @pytest.mark.parametrize("graph_name", ["er_mid", "rmat_small", "mostly_isolated"])
    def test_roundtrip_arrays_identical(self, graph_name, tmp_path):
        g = build(graph_name).with_random_weights(seed=5)
        sharded = PartitionEngine().partition(g, 3)
        store = ShardStore.save(sharded, tmp_path / "s")
        reopened = ShardStore.open(tmp_path / "s")
        assert reopened.num_partitions == len(sharded.shards)
        assert reopened.num_vertices == g.num_vertices
        assert reopened.num_edges == g.num_edges
        assert reopened.weighted
        lazy = reopened.sharded_graph()
        np.testing.assert_array_equal(lazy.boundaries, sharded.boundaries)
        for a, b in zip(sharded.shards, lazy.shards):
            for layout in ("csc", "csr"):
                x, y = getattr(a, layout), getattr(b, layout)
                assert x.indptr.dtype == y.indptr.dtype
                assert x.indices.dtype == y.indices.dtype
                assert x.edge_ids.dtype == y.edge_ids.dtype
                np.testing.assert_array_equal(x.indptr, y.indptr)
                np.testing.assert_array_equal(x.indices, y.indices)
                np.testing.assert_array_equal(x.edge_ids, y.edge_ids)
            np.testing.assert_array_equal(a.csc_weights, b.csc_weights)
            np.testing.assert_array_equal(a.csr_weights, b.csr_weights)
            # The movement engine sizes transfers from these -- they must
            # agree with the in-RAM shard without loading any arrays.
            assert a.total_bytes(True, False) == b.total_bytes(True, False)
            assert a.num_in_edges == b.num_in_edges
            assert a.num_out_edges == b.num_out_edges

    def test_open_is_lazy(self, tmp_path):
        store = _store(tmp_path, build("er_mid"))
        reopened = ShardStore.open(store.path)
        loads = []
        orig = ShardStore.load_arrays
        reopened.load_arrays = lambda i, unit_weights=False: (
            loads.append(i) or orig(reopened, i, unit_weights=unit_weights)
        )
        lazy = reopened.sharded_graph()
        # Counts, intervals and byte sizing come from the manifest alone.
        for shard in lazy.shards:
            shard.num_in_edges, shard.num_out_edges, shard.num_interval_vertices
            shard.total_bytes(False, False)
        assert loads == []
        lazy.shards[1].csc  # first array touch faults exactly one shard
        assert loads == [1]

    def test_unit_weights_synthesized(self, tmp_path):
        g = build("er_mid")  # unweighted
        store = _store(tmp_path, g)
        assert not store.weighted
        arrays = store.load_arrays(0, unit_weights=True)
        np.testing.assert_array_equal(
            arrays.csc_weights, np.ones(arrays.csc.num_edges, dtype=np.float32)
        )
        np.testing.assert_array_equal(
            arrays.csr_weights, np.ones(arrays.csr.num_edges, dtype=np.float32)
        )
        assert store.load_arrays(0).csc_weights is None

    def test_open_rejects_non_store(self, tmp_path):
        (tmp_path / MANIFEST).write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a shard store"):
            ShardStore.open(tmp_path)
        (tmp_path / MANIFEST).write_text(
            json.dumps({"format": "graphreduce-shard-store", "version": 99})
        )
        with pytest.raises(ValueError, match="version"):
            ShardStore.open(tmp_path)

    def test_store_edgelist_facade(self, tmp_path):
        g = build("path300")
        store = _store(tmp_path, g)
        edges = store.edgelist()
        assert (edges.num_vertices, edges.num_edges) == (g.num_vertices, g.num_edges)
        assert edges.name == g.name
        assert edges.weights is None  # unweighted marker
        np.testing.assert_array_equal(edges.out_degrees(), g.out_degrees())
        np.testing.assert_array_equal(edges.in_degrees(), g.in_degrees())
        unit = edges.with_unit_weights()
        assert unit.weights is not None and len(unit.weights) == 0  # weighted marker

    def test_disk_bytes_covers_array_files(self, tmp_path):
        store = _store(tmp_path, build("er_mid"))
        expected = sum(
            f.stat().st_size for f in store.path.iterdir() if f.suffix == ".npy"
        )
        assert store.disk_bytes() == expected > 0


# ----------------------------------------------------------------------
# Streaming external partitioner
# ----------------------------------------------------------------------
def _assert_stores_byte_identical(a, b):
    names_a = sorted(p.name for p in a.path.iterdir())
    names_b = sorted(p.name for p in b.path.iterdir())
    assert names_a == names_b
    for name in names_a:
        assert (a.path / name).read_bytes() == (b.path / name).read_bytes(), name


class TestStreamingBuilder:
    def test_npz_matches_in_ram_save(self, tmp_path):
        g = build("rmat_small").with_random_weights(seed=9)
        save_npz(g, tmp_path / "g.npz")
        in_ram = _store(tmp_path, g, p=4, name="ram")
        # chunk_edges far below the edge count forces many ragged chunks
        streamed = build_store_streaming(
            tmp_path / "g.npz", tmp_path / "streamed", 4, chunk_edges=37, name=g.name
        )
        _assert_stores_byte_identical(in_ram, streamed)

    def test_txt_matches_in_ram_save(self, tmp_path):
        g = build("er_mid")  # unweighted: text ids round-trip exactly
        save_edgelist_txt(g, tmp_path / "g.txt")
        in_ram = _store(tmp_path, g, p=3, name="ram")
        streamed = build_store_streaming(
            tmp_path / "g.txt",
            tmp_path / "streamed",
            3,
            chunk_edges=23,
            num_vertices=g.num_vertices,
            name=g.name,
        )
        _assert_stores_byte_identical(in_ram, streamed)

    def test_num_vertices_extends_past_max_endpoint(self, tmp_path):
        (tmp_path / "g.txt").write_text("0 1\n1 2\n")
        store = build_store_streaming(tmp_path / "g.txt", tmp_path / "s", 2, num_vertices=10)
        assert store.num_vertices == 10
        assert store.num_edges == 2
        assert len(store.out_degrees()) == 10

    def test_endpoint_outside_declared_range_rejected(self, tmp_path):
        (tmp_path / "g.txt").write_text("0 5\n")
        with pytest.raises(ValueError, match="outside"):
            build_store_streaming(tmp_path / "g.txt", tmp_path / "s", 2, num_vertices=3)

    def test_empty_input(self, tmp_path):
        (tmp_path / "g.txt").write_text("# nothing but comments\n% here\n")
        store = build_store_streaming(tmp_path / "g.txt", tmp_path / "s", 4, num_vertices=4)
        assert (store.num_vertices, store.num_edges) == (4, 0)
        reopened = ShardStore.open(store.path)
        for i in range(reopened.num_partitions):
            arrays = reopened.load_arrays(i)
            assert arrays.csc.num_edges == 0 and arrays.csr.num_edges == 0


# ----------------------------------------------------------------------
# HostPrefetcher accounting (against a fake store)
# ----------------------------------------------------------------------
def _fake_arrays(index):
    a = np.full(8, index, dtype=np.int64)
    csr = SimpleNamespace(indptr=a, indices=a.astype(np.int32), edge_ids=a)
    return SimpleNamespace(csc=csr, csr=csr, csc_weights=None, csr_weights=None, nbytes=100)


class FakeStore:
    """Records load order; optionally stalls loads on an Event."""

    def __init__(self):
        self.loads = []
        self.block = None
        self._lock = threading.Lock()

    def load_arrays(self, index, unit_weights=False):
        if self.block is not None:
            assert self.block.wait(5.0)
        with self._lock:
            self.loads.append(index)
        return _fake_arrays(index)


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.002)


class TestHostPrefetcher:
    def test_capacity_floor(self):
        assert HostPrefetcher(FakeStore(), capacity=0, workers=0).capacity == 1

    def test_lru_eviction_order(self):
        store = FakeStore()
        pf = HostPrefetcher(store, capacity=2, workers=0)
        evicted = []
        pf.on_evict = evicted.append
        for i in (0, 1, 2):
            pf.get(i)
        assert (pf.faults, pf.evictions) == (3, 1)
        assert evicted == [0]  # least recently used first
        assert pf.get(1) is not None and pf.hits == 1  # refreshed 1
        pf.get(0)  # refault -> evicts 2, not the just-touched 1
        assert (pf.faults, pf.evictions) == (4, 2)
        assert evicted == [0, 2]
        assert store.loads == [0, 1, 2, 0]

    def test_workers_zero_never_prefetches(self):
        store = FakeStore()
        pf = HostPrefetcher(store, capacity=4, workers=0)
        pf.schedule([0, 1, 2])
        assert store.loads == [] and pf.prefetched == 0
        pf.get(0)
        assert (pf.faults, pf.hits) == (1, 0)

    def test_schedule_warms_capacity_minus_one_ahead(self):
        store = FakeStore()
        pf = HostPrefetcher(store, capacity=3, workers=1)
        try:
            pf.schedule([5, 6, 7, 8])
            _wait_until(lambda: pf.prefetched == 2)
            assert sorted(store.loads) == [5, 6]  # one slot stays for compute
            _wait_until(lambda: pf.get(5) is not None)
            assert pf.hits == 1 and pf.faults == 0
            # Consuming shard 5 advances the window: 7 gets warmed next.
            _wait_until(lambda: 7 in store.loads)
            assert 8 not in store.loads
        finally:
            pf.shutdown()

    def test_frontier_skip_suppression(self):
        store = FakeStore()
        pf = HostPrefetcher(store, capacity=8, workers=1)
        try:
            pf.schedule([0, 2, 4])  # frontier skipped shards 1 and 3
            _wait_until(lambda: pf.prefetched == 3)
            assert sorted(store.loads) == [0, 2, 4]
            for i in (0, 2, 4):
                pf.get(i)
            assert (pf.hits, pf.waits, pf.faults) == (3, 0, 0)
            assert sorted(store.loads) == [0, 2, 4]  # skipped shards never touched
        finally:
            pf.shutdown()

    def test_wait_accounting(self):
        store = FakeStore()
        store.block = threading.Event()
        pf = HostPrefetcher(store, capacity=2, workers=1)
        try:
            pf.schedule([7, 8])
            _wait_until(lambda: 7 in pf._futures)  # in flight, stalled on the event
            threading.Timer(0.05, store.block.set).start()
            arrays = pf.get(7)
            assert arrays is not None
            assert (pf.hits, pf.waits, pf.faults) == (0, 1, 0)
            assert pf.wait_seconds > 0.0
            kinds = {kind for kind, *_ in pf.lane}
            assert {"prefetch", "wait"} <= kinds
        finally:
            store.block.set()
            pf.shutdown()

    def test_arrays_reads_are_uncounted(self):
        store = FakeStore()
        pf = HostPrefetcher(store, capacity=2, workers=0)
        pf.get(0)
        for _ in range(5):
            pf.arrays(0)
        assert (pf.hits, pf.faults) == (0, 1)
        pf.get(1)
        pf.get(2)  # evicts 0 (arrays() reads do not refresh LRU order)
        pf.arrays(0)  # falls back to a counted get -> fault
        assert pf.faults == 4

    def test_shutdown_keeps_counters(self):
        store = FakeStore()
        pf = HostPrefetcher(store, capacity=1, workers=0)
        pf.get(0)
        pf.get(1)
        pf.shutdown()
        pf.shutdown()  # idempotent
        snap = pf.snapshot()
        assert snap["faults"] == 2 and snap["evictions"] == 1
        assert snap["hit_rate"] == 0.0
        assert snap["capacity"] == 1 and snap["workers"] == 0
        assert len(snap["lane"]) == 2

    def test_snapshot_hit_rate(self):
        store = FakeStore()
        pf = HostPrefetcher(store, capacity=4, workers=0)
        pf.get(0)
        pf.get(0)
        pf.get(0)
        snap = pf.snapshot()
        assert snap["hit_rate"] == pytest.approx(2 / 3)
        assert snap["bytes_loaded"] == 100  # one fake shard faulted in


# ----------------------------------------------------------------------
# Runtime integration: budgeted capacity and counters
# ----------------------------------------------------------------------
class TestRuntimeIntegration:
    def test_budget_one_runs_with_capacity_one(self, tmp_path):
        store = _store(tmp_path, build("er_mid"), p=4)
        opts = GraphReduceOptions(memory_budget=1, host_prefetch=False)
        result = GraphReduce(shard_store=store, options=opts).run(
            PageRank(tolerance=None, max_iterations=3)
        )
        pf = result.prefetch
        assert pf["capacity"] == 1 and pf["workers"] == 0
        assert pf["evictions"] > 0  # every acquisition churns the 1-slot cache
        assert pf["hits"] + pf["waits"] + pf["faults"] > 0
        assert pf["bytes_loaded"] > 0

    def test_unbudgeted_store_run_caches_everything(self, tmp_path):
        store = _store(tmp_path, build("er_mid"), p=4)
        result = GraphReduce(shard_store=store).run(
            PageRank(tolerance=None, max_iterations=3)
        )
        pf = result.prefetch
        assert pf["capacity"] == store.num_partitions
        assert pf["evictions"] == 0

    def test_partition_count_mismatch_rejected(self, tmp_path):
        store = _store(tmp_path, build("er_mid"), p=4)
        engine = GraphReduce(shard_store=store, options=GraphReduceOptions(num_partitions=3))
        with pytest.raises(ValueError, match="partition"):
            engine.run(PageRank(tolerance=None, max_iterations=2))
