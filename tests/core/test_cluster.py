"""Cluster-backend and multi-device scheduler tests.

The partitioned-ownership layers (repro.core.ownership feeding both the
``cluster`` procpool backend and the multi-device scheduler) are pure
performance-plane rewrites: every configuration must stay bit-identical
to serial execution -- values, frontier trajectory, simulated timeline,
kernel censuses -- while each worker holds only its owned shard slice.
The property tests pin the ownership invariants (every shard exactly one
owner; the in/out boundary sets describe the same crossing edges), and
the crash test covers the hard guarantee: a SIGKILLed worker degrades to
a serial re-run with a warning, an unchanged result, and no leaked
shared memory.
"""

import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.core.test_fastpath import PROGRAMS, _kernel_items
from tests.core.test_procpool import MATRIX, _assert_identical, _shm_entries
from tests.fixture_graphs import build
from repro.algorithms import PageRank
from repro.core.multigpu import MultiGPUGraphReduce
from repro.core.ownership import (
    OwnershipMap,
    boundary_matrix,
    boundary_sets,
    check_frontier_policy,
    owned_vertex_mask,
)
from repro.core.partition import PartitionEngine
from repro.core.procpool import ENV_WORKER_FLAG
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.core.shardstore import ShardStore
from repro.graph.edgelist import EdgeList


def _cluster(workers, policy="replicated", **kw):
    return GraphReduceOptions(
        parallel_shards=workers,
        parallel_backend="cluster",
        frontier_policy=policy,
        **kw,
    )


# ----------------------------------------------------------------------
# Equivalence matrix: bit-identical to serial
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "workers,policy",
    [
        (1, "replicated"),
        (2, "replicated"),
        (2, "partitioned"),
        (4, "partitioned"),
    ],
)
def test_cluster_matches_serial_in_ram(workers, policy):
    g = build("er_mid")
    weighted = g.with_random_weights(seed=33)
    # The full program matrix runs at the common 2-worker shape; the
    # 1-worker (degenerate single-owner) and 4-worker (one shard per
    # owner) shapes re-check the traversal + fixpoint corners.
    algos = MATRIX if workers == 2 else ("bfs", "pagerank")
    before = _shm_entries()
    for algo in algos:
        graph = weighted if "sssp" in algo else g
        make = PROGRAMS[algo]
        serial = GraphReduce(
            graph, options=GraphReduceOptions(num_partitions=4, parallel_backend="serial")
        ).run(make())
        pool = GraphReduce(
            graph, options=_cluster(workers, policy, num_partitions=4)
        ).run(make())
        label = f"{algo}/w{workers}/{policy}"
        _assert_identical(label, pool, serial)
        pp = pool.procpool
        assert pp["backend"] == "cluster", label
        assert pp["frontier_policy"] == policy, label
        assert sum(pp["owned_shards"]) == 4, label
        assert len(pp["worker_resident_bytes"]) == pp["workers"], label
        assert pp["single_process_bytes"] > 0, label
        assert pp["boundary_bytes_sent"] > 0, label
    assert _shm_entries() == before  # every segment unlinked on exit


def test_cluster_matches_serial_store_backed(tmp_path):
    g = build("er_mid")
    weighted = g.with_random_weights(seed=33)
    for workers, label, graph, algo in (
        (2, "plain", g, "bfs"),
        (2, "plain", g, "pagerank"),
        (4, "plain", g, "cc"),
        (2, "weighted", weighted, "stamping_sssp"),
    ):
        store = ShardStore.save(
            PartitionEngine().partition(graph, 4), tmp_path / f"{label}-{algo}-{workers}"
        )
        make = PROGRAMS[algo]
        serial = GraphReduce(
            graph, options=GraphReduceOptions(num_partitions=4, parallel_backend="serial")
        ).run(make())
        pool = GraphReduce(
            shard_store=store, options=_cluster(workers)
        ).run(make())
        _assert_identical(f"store/{algo}/w{workers}", pool, serial)
        # Store workers memmap only their owned shards. On this tiny
        # fixture the per-worker state copies dwarf the shard savings,
        # so the "resident < single-process" claim is gated where it is
        # meaningful -- the shard-dominated bench/CI scenarios
        # (cluster_pagerank_wallclock, the cluster-smoke CI job). Here
        # we pin the accounting shape.
        pp = pool.procpool
        assert len(pp["worker_resident_bytes"]) == pp["workers"]
        assert all(b > 0 for b in pp["worker_resident_bytes"])
        assert pp["single_process_bytes"] > 0


def test_partitioned_policy_ships_fewer_boundary_bytes():
    g = build("er_mid")
    make = PROGRAMS["pagerank"]
    rep = GraphReduce(
        g, options=_cluster(2, "replicated", num_partitions=4)
    ).run(make())
    par = GraphReduce(
        g, options=_cluster(2, "partitioned", num_partitions=4)
    ).run(make())
    assert np.array_equal(rep.vertex_values, par.vertex_values)
    assert par.procpool["boundary_bytes_sent"] < rep.procpool["boundary_bytes_sent"]


# ----------------------------------------------------------------------
# Ownership invariants (hypothesis)
# ----------------------------------------------------------------------
@st.composite
def graphs_partitions_owners(draw, max_vertices=40, max_edges=120):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    vid = st.integers(min_value=0, max_value=n - 1)
    src = draw(st.lists(vid, min_size=m, max_size=m))
    dst = draw(st.lists(vid, min_size=m, max_size=m))
    p = draw(st.integers(min_value=1, max_value=8))
    owners = draw(st.integers(min_value=1, max_value=8))
    edges = EdgeList(n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64))
    return edges, p, owners


@settings(max_examples=60)
@given(gpo=graphs_partitions_owners())
def test_every_shard_has_exactly_one_owner(gpo):
    edges, p, owners = gpo
    sharded = PartitionEngine().partition(edges, p)
    for layout in (OwnershipMap.contiguous, OwnershipMap.round_robin):
        ownership = layout(sharded.num_partitions, owners)
        ownership.validate()
        claimed = [i for w in range(ownership.num_owners) for i in ownership.shards_of(w)]
        assert sorted(claimed) == list(range(sharded.num_partitions))
        # Contiguous layout: each owner's shard run is an interval.
        if layout is OwnershipMap.contiguous:
            for w in range(ownership.num_owners):
                ids = ownership.shards_of(w)
                assert ids == list(range(min(ids), max(ids) + 1)) if ids else True


@settings(max_examples=60, deadline=None)
@given(gpo=graphs_partitions_owners())
def test_boundary_sets_are_symmetric(gpo):
    edges, p, owners = gpo
    sharded = PartitionEngine().partition(edges, p)
    ownership = OwnershipMap.contiguous(sharded.num_partitions, owners)
    in_b, out_b = boundary_sets(sharded, ownership)
    owned = [
        owned_vertex_mask(sharded, ownership, w)
        for w in range(ownership.num_owners)
    ]
    for w in range(ownership.num_owners):
        # An owner never imports its own vertices.
        assert not owned[w][in_b[w]].any()
        # out_boundary[p] is exactly the union over consumers of the
        # imported vertices that p owns -- both sides see the same
        # crossing edges.
        read_by_others = np.zeros(sharded.num_vertices, dtype=bool)
        for c in range(ownership.num_owners):
            if c != w:
                read_by_others[in_b[c]] = True
        assert np.array_equal(
            np.flatnonzero(read_by_others & owned[w]), out_b[w]
        )
    # The pairwise matrix partitions each consumer's in-boundary.
    matrix = boundary_matrix(sharded, ownership)
    for c in range(ownership.num_owners):
        pieces = [vids for (cc, pp), vids in matrix.items() if cc == c]
        combined = np.sort(np.concatenate(pieces)) if pieces else np.array([], dtype=np.int64)
        assert np.array_equal(combined, in_b[c])


def test_ownership_rejects_bad_maps():
    with pytest.raises(ValueError, match="invalid owner"):
        OwnershipMap(num_owners=2, owner_of=(0, 2)).validate()
    with pytest.raises(ValueError, match="at least one owner"):
        OwnershipMap(num_owners=0, owner_of=()).validate()
    with pytest.raises(ValueError, match="frontier_policy"):
        check_frontier_policy("broadcast")


# ----------------------------------------------------------------------
# Worker-crash recovery
# ----------------------------------------------------------------------
class CrashyPageRank(PageRank):
    """Kills the hosting cluster worker dead (SIGKILL) in iteration >= 1."""

    def apply(self, ctx, vertex_ids, old_values, gathered, has_gathered, iteration):
        if iteration >= 1 and os.environ.get(ENV_WORKER_FLAG):
            os.kill(os.getpid(), signal.SIGKILL)
        return super().apply(ctx, vertex_ids, old_values, gathered, has_gathered, iteration)


def test_cluster_worker_crash_falls_back_to_serial():
    g = build("er_mid")
    before = _shm_entries()
    serial = GraphReduce(
        g, options=GraphReduceOptions(num_partitions=4, parallel_backend="serial")
    ).run(PageRank(tolerance=1e-3))
    with pytest.warns(RuntimeWarning, match="falling back to serial"):
        recovered = GraphReduce(
            g, options=_cluster(2, num_partitions=4)
        ).run(CrashyPageRank(tolerance=1e-3))
    # The serial re-run is deterministic, so the result is unchanged.
    assert recovered.procpool is None
    assert np.array_equal(recovered.vertex_values, serial.vertex_values)
    assert recovered.frontier_history == serial.frontier_history
    assert recovered.sim_time == serial.sim_time
    assert _shm_entries() == before  # crashed run leaked nothing


# ----------------------------------------------------------------------
# Multi-device scheduler
# ----------------------------------------------------------------------
def test_multigpu_bit_identical_across_device_counts():
    g = build("er_mid")
    opts = GraphReduceOptions(num_partitions=4)
    make = PROGRAMS["pagerank"]
    base = MultiGPUGraphReduce(g, num_devices=1, options=opts).run(make())
    for n in (2, 4):
        for policy in ("replicated", "partitioned"):
            r = MultiGPUGraphReduce(
                g, num_devices=n, options=opts, frontier_policy=policy
            ).run(make())
            assert np.array_equal(r.vertex_values, base.vertex_values), (n, policy)
            assert r.iterations == base.iterations, (n, policy)
            assert r.converged == base.converged, (n, policy)
            assert r.frontier_policy == policy
            assert len(r.per_device) == n
            assert sum(d.owned_shards for d in r.per_device) == r.num_partitions
            assert sum(d.owned_vertices for d in r.per_device) == g.num_vertices
            total_sent = sum(d.bytes_sent for d in r.per_device)
            assert total_sent == r.replication_bytes
            assert r.p2p_bytes + r.host_staged_bytes == r.replication_bytes


def test_multigpu_partitioned_replication_is_sparser():
    g = build("er_mid")
    opts = GraphReduceOptions(num_partitions=4)
    make = PROGRAMS["pagerank"]
    rep = MultiGPUGraphReduce(
        g, num_devices=4, options=opts, frontier_policy="replicated"
    ).run(make())
    par = MultiGPUGraphReduce(
        g, num_devices=4, options=opts, frontier_policy="partitioned"
    ).run(make())
    assert np.array_equal(rep.vertex_values, par.vertex_values)
    assert par.replication_bytes <= rep.replication_bytes


def test_multigpu_routes_follow_switch_topology():
    g = build("er_mid")
    make = PROGRAMS["pagerank"]
    # 4 devices fit one radix-4 switch: every pair is peer-capable.
    within = MultiGPUGraphReduce(
        g, num_devices=4, options=GraphReduceOptions(num_partitions=4)
    ).run(make())
    assert within.p2p_bytes > 0
    assert within.host_staged_bytes == 0
    # 8 devices span two switches: cross-switch pairs stage via host.
    across = MultiGPUGraphReduce(
        g, num_devices=8, options=GraphReduceOptions(num_partitions=8)
    ).run(make())
    assert across.p2p_bytes > 0
    assert across.host_staged_bytes > 0


def test_multigpu_rejects_bad_device_count():
    g = build("er_small")
    with pytest.raises(ValueError, match="num_devices"):
        MultiGPUGraphReduce(g, num_devices=0)
