"""Compute Engine unit tests: per-phase behaviour on hand-built shards."""

import numpy as np
import pytest

from repro.algorithms import BFS, PageRank, SSSP
from repro.core.compute import ComputeEngine, WorkItems
from repro.core.frontier import FrontierManager
from repro.core.partition import PartitionEngine
from repro.core.runtime import RuntimeContext
from repro.graph.edgelist import EdgeList


def make_engine(pairs, n, program, frontier_init=None, p=2, weights=None):
    edges = EdgeList.from_pairs(pairs, num_vertices=n, weights=weights)
    if program.needs_weights and edges.weights is None:
        edges = edges.with_unit_weights()
    sharded = PartitionEngine().partition(edges, p)
    ctx = RuntimeContext(edges)
    init = (
        np.asarray(program.init_frontier(ctx), dtype=bool)
        if frontier_init is None
        else frontier_init
    )
    frontier = FrontierManager(sharded, init)
    return ComputeEngine(sharded, program, ctx, frontier), sharded, frontier


def test_work_items_accumulate():
    w = WorkItems(2, 3)
    w += WorkItems(5, 7)
    assert (w.edge_items, w.vertex_items, w.total) == (7, 10, 17)


def test_gather_then_reduce_on_one_shard():
    # 0->2, 1->2 with SSSP: vertex 2 gathers min(dist+w).
    prog = SSSP(source=0)
    engine, sharded, frontier = make_engine(
        [(0, 2), (1, 2)], 3, prog, p=1, weights=[5.0, 7.0]
    )
    frontier.current[:] = False
    frontier.current[2] = True  # vertex 2 pulls from its in-edges
    shard = sharded.shards[0]
    engine.begin_iteration(0)
    w1 = engine.run_group(("gather_map",), shard, count_full=False)
    assert w1.edge_items == 2
    w2 = engine.run_group(("gather_reduce",), shard, count_full=False)
    assert w2.vertex_items == 1
    assert engine.gather_has[2]
    assert engine.gather_temp[2] == pytest.approx(5.0)  # 0 + 5.0


def test_gather_skips_inactive_vertices():
    prog = SSSP(source=0)
    engine, sharded, frontier = make_engine([(0, 1), (0, 2)], 3, prog, p=1)
    frontier.current[:] = False
    frontier.current[1] = True
    engine.begin_iteration(0)
    w = engine.run_group(("gather_map", "gather_reduce"), sharded.shards[0], False)
    assert w.edge_items == 1  # only vertex 1's in-edge
    assert not engine.gather_has[2]


def test_count_full_reports_shard_totals():
    prog = SSSP(source=0)
    engine, sharded, frontier = make_engine([(0, 1), (0, 2), (1, 2)], 3, prog, p=1)
    frontier.current[:] = False  # nothing active
    engine.begin_iteration(0)
    shard = sharded.shards[0]
    w = engine.run_group(("gather_map", "gather_reduce"), shard, count_full=True)
    assert w.edge_items == shard.num_in_edges
    assert w.vertex_items == shard.num_interval_vertices


def test_apply_marks_changed_and_respects_dtype():
    prog = BFS(source=0)
    engine, sharded, frontier = make_engine([(0, 1)], 2, prog, p=1)
    engine.begin_iteration(0)
    engine.run_group(("apply",), sharded.shards[0], False)
    assert engine.vertex_values[0] == 0.0
    assert frontier.changed[0]
    assert not frontier.changed[1]
    assert engine.vertex_values.dtype == np.float32


def test_apply_shape_mismatch_rejected():
    class Bad(BFS):
        def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
            return old_vals, np.zeros(max(len(vids) - 1, 0), dtype=bool)

    engine, sharded, frontier = make_engine([(0, 1)], 2, Bad(source=0), p=1)
    engine.begin_iteration(0)
    with pytest.raises(ValueError, match="changed mask"):
        engine.run_group(("apply",), sharded.shards[0], False)


def test_frontier_activate_reaches_out_neighbors():
    prog = BFS(source=0)
    engine, sharded, frontier = make_engine([(0, 1), (0, 2), (1, 2)], 3, prog, p=1)
    engine.begin_iteration(0)
    engine.run_group(("apply", "frontier_activate"), sharded.shards[0], False)
    assert set(np.flatnonzero(frontier.next)) == {1, 2}


def test_scatter_updates_edge_state():
    class ScatterProg(BFS):
        edge_dtype = np.float32

        def scatter(self, ctx, src_ids, src_vals, weights, edge_states):
            return src_vals + 1.0

    prog = ScatterProg(source=0)
    engine, sharded, frontier = make_engine([(0, 1), (0, 2)], 3, prog, p=1)
    engine.begin_iteration(0)
    engine.run_group(("apply",), sharded.shards[0], False)
    w = engine.run_group(("scatter",), sharded.shards[0], False)
    assert w.edge_items == 2
    # Both out-edges of vertex 0 got value depth(0)+1 = 1.0.
    np.testing.assert_array_equal(engine.edge_state, [1.0, 1.0])


def test_pagerank_gather_uses_out_degrees():
    prog = PageRank()
    engine, sharded, frontier = make_engine([(0, 2), (1, 2), (0, 1)], 3, prog, p=1)
    engine.begin_iteration(0)
    engine.run_group(("gather_map", "gather_reduce"), sharded.shards[0], False)
    # vertex 2 gathers 1/deg(0) + 1/deg(1) = 1/2 + 1/1.
    assert engine.gather_temp[2] == pytest.approx(1.5)


def test_undefined_phases_are_noops_but_count_full():
    prog = BFS(source=0)  # no gather, no scatter
    engine, sharded, frontier = make_engine([(0, 1)], 2, prog, p=1)
    engine.begin_iteration(0)
    shard = sharded.shards[0]
    w = engine.run_group(("gather_map", "gather_reduce", "scatter"), shard, count_full=True)
    assert w.edge_items == shard.num_in_edges + shard.num_out_edges
    assert not engine.gather_has.any()
