"""Partition Engine invariants: coverage, balance, layout, plug-ins."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    PartitionEngine,
    PartitionLogicTable,
    edge_balanced_intervals,
    vertex_balanced_intervals,
)
from repro.graph.edgelist import EdgeList
from repro.graph.generators import erdos_renyi, rmat, star_graph


@pytest.fixture
def engine():
    return PartitionEngine()


def test_every_in_edge_lands_in_dst_shard(engine):
    g = erdos_renyi(100, 600, seed=1)
    sharded = engine.partition(g, 4)
    seen = []
    for shard in sharded.shards:
        for v_local in range(shard.num_interval_vertices):
            v = shard.start + v_local
            lo, hi = shard.csc.indptr[v_local], shard.csc.indptr[v_local + 1]
            for slot in range(lo, hi):
                eid = shard.csc.edge_ids[slot]
                assert g.dst[eid] == v
                seen.append(int(eid))
    assert sorted(seen) == list(range(g.num_edges))


def test_every_out_edge_lands_in_src_shard(engine):
    g = erdos_renyi(100, 600, seed=2)
    sharded = engine.partition(g, 4)
    seen = []
    for shard in sharded.shards:
        for v_local in range(shard.num_interval_vertices):
            v = shard.start + v_local
            lo, hi = shard.csr.indptr[v_local], shard.csr.indptr[v_local + 1]
            for slot in range(lo, hi):
                eid = shard.csr.edge_ids[slot]
                assert g.src[eid] == v
                seen.append(int(eid))
    assert sorted(seen) == list(range(g.num_edges))


def test_intervals_are_disjoint_and_cover(engine):
    g = rmat(10, 8000, seed=3)
    sharded = engine.partition(g, 7)
    assert sharded.boundaries[0] == 0
    assert sharded.boundaries[-1] == g.num_vertices
    for i, shard in enumerate(sharded.shards):
        assert shard.start == sharded.boundaries[i]
        assert shard.stop == sharded.boundaries[i + 1]


def test_edge_balanced_beats_vertex_balanced_on_skew(engine):
    # A star graph: vertex 0 owns all edges. Edge-balancing puts the hub
    # alone; vertex balancing gives shard 0 everything.
    g = star_graph(1000)
    eb = engine.partition(g, 4, logic="edge_balanced")
    vb = engine.partition(g, 4, logic="vertex_balanced")
    eb_loads = [s.num_edges for s in eb.shards]
    vb_loads = [s.num_edges for s in vb.shards]
    assert max(eb_loads) <= max(vb_loads)


def test_edge_balance_quality(engine):
    g = erdos_renyi(500, 5000, seed=4)
    sharded = engine.partition(g, 5)
    loads = [s.num_edges for s in sharded.shards]
    assert max(loads) < 2.0 * (sum(loads) / len(loads))


def test_weights_are_carried_in_both_layouts(engine):
    g = erdos_renyi(50, 300, seed=5).with_random_weights(seed=6)
    sharded = engine.partition(g, 3)
    for shard in sharded.shards:
        np.testing.assert_array_equal(shard.csc_weights, g.weights[shard.csc.edge_ids])
        np.testing.assert_array_equal(shard.csr_weights, g.weights[shard.csr.edge_ids])


def test_single_partition(engine):
    g = erdos_renyi(30, 100, seed=7)
    sharded = engine.partition(g, 1)
    assert sharded.num_partitions == 1
    assert sharded.shards[0].num_in_edges == g.num_edges
    assert sharded.shards[0].num_out_edges == g.num_edges


def test_more_partitions_than_vertices_clamped(engine):
    g = erdos_renyi(5, 10, seed=8)
    sharded = engine.partition(g, 100)
    assert sharded.num_partitions == 5


def test_empty_graph(engine):
    g = EdgeList.from_pairs([], num_vertices=10)
    sharded = engine.partition(g, 3)
    assert sharded.num_partitions == 3
    assert all(s.num_edges == 0 for s in sharded.shards)


def test_invalid_partition_count(engine):
    g = erdos_renyi(10, 20, seed=9)
    with pytest.raises(ValueError):
        engine.partition(g, 0)


def test_interval_of(engine):
    g = erdos_renyi(100, 500, seed=10)
    sharded = engine.partition(g, 4)
    for shard in sharded.shards:
        assert sharded.interval_of(shard.start) == shard.index
        assert sharded.interval_of(shard.stop - 1) == shard.index


def test_buffer_bytes_structure(engine):
    g = erdos_renyi(40, 200, seed=11).with_unit_weights()
    shard = engine.partition(g, 2).shards[0]
    plain = shard.buffer_bytes(with_weights=False, with_edge_state=False)
    assert set(plain) == {"in_topology", "out_topology", "edge_update_array", "vertex_update_array"}
    rich = shard.buffer_bytes(with_weights=True, with_edge_state=True)
    assert {"in_weights", "out_weights", "in_edge_state", "out_edge_state"} <= set(rich)
    assert shard.total_bytes(True, True) == sum(rich.values())
    assert rich["edge_update_array"] == shard.num_in_edges * 4


def test_logic_table_plugin(engine):
    table = PartitionLogicTable()

    def thirds(edges, p):
        n = edges.num_vertices
        return np.array([0] + [n // 3, 2 * n // 3][: p - 1] + [n])[: p + 1]

    table.register("thirds", thirds)
    eng = PartitionEngine(table)
    g = erdos_renyi(30, 100, seed=12)
    sharded = eng.partition(g, 3, logic="thirds")
    assert sharded.boundaries.tolist() == [0, 10, 20, 30]
    with pytest.raises(KeyError):
        eng.partition(g, 3, logic="nonexistent")
    assert "edge_balanced" in table.names


def test_bad_logic_output_rejected(engine):
    table = PartitionLogicTable()
    table.register("broken", lambda edges, p: np.array([0, 5]))
    eng = PartitionEngine(table)
    with pytest.raises(ValueError):
        eng.partition(erdos_renyi(30, 100, seed=13), 3, logic="broken")


def test_choose_num_partitions_scales_with_graph():
    small = erdos_renyi(100, 500, seed=14)
    big = erdos_renyi(1000, 50_000, seed=15)
    p_small = PartitionEngine.choose_num_partitions(small, 10**6, False, False, 10**4)
    p_big = PartitionEngine.choose_num_partitions(big, 10**6, False, False, 10**4)
    assert p_big > p_small


def test_choose_num_partitions_rejects_oversized_residents():
    g = erdos_renyi(100, 500, seed=16)
    with pytest.raises(ValueError, match="vertex set"):
        PartitionEngine.choose_num_partitions(g, 1000, False, False, 2000)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200),
    p=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_partition_invariants_property(n, p, seed):
    """Boundaries monotone; every edge appears exactly once per role."""
    m = min(3 * n, n * max(n - 1, 0))
    g = erdos_renyi(n, m, seed=seed) if m else EdgeList.from_pairs([], num_vertices=n)
    sharded = PartitionEngine().partition(g, p)
    b = sharded.boundaries
    assert b[0] == 0 and b[-1] == n
    assert np.all(np.diff(b) >= 0)
    in_total = sum(s.num_in_edges for s in sharded.shards)
    out_total = sum(s.num_out_edges for s in sharded.shards)
    assert in_total == g.num_edges
    assert out_total == g.num_edges


@settings(max_examples=20, deadline=None)
@given(p=st.integers(min_value=1, max_value=10))
def test_boundary_functions_direct(p):
    g = erdos_renyi(77, 300, seed=0)
    for fn in (edge_balanced_intervals, vertex_balanced_intervals):
        b = fn(g, p)
        assert len(b) == p + 1
        assert b[0] == 0 and b[-1] == 77
        assert np.all(np.diff(b) >= 0)
