"""GraphReduce end-to-end: correctness, optimization equivalence,

out-of-memory streaming, metrics sanity."""

import numpy as np
import pytest

from repro.algorithms import BFS, BFSGather, SSSP, PageRank, ConnectedComponents, HeatSimulation, SpMV
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.graph.generators import (
    erdos_renyi,
    mesh2d,
    path_graph,
    rmat,
    road_network,
    star_graph,
)
from repro.sim.specs import DeviceSpec, HostSpec, MachineSpec


def reference_bfs_depths(g, source):
    import networkx as nx

    G = nx.DiGraph(zip(g.src.tolist(), g.dst.tolist()))
    G.add_nodes_from(range(g.num_vertices))
    want = np.full(g.num_vertices, np.inf, dtype=np.float32)
    for v, d in nx.single_source_shortest_path_length(G, source).items():
        want[v] = d
    return want


class TestCorrectness:
    def test_bfs_path(self):
        r = GraphReduce(path_graph(6)).run(BFS(source=0))
        assert r.vertex_values.tolist() == [0, 1, 2, 3, 4, 5]
        assert r.converged

    def test_bfs_unreachable_stay_inf(self):
        r = GraphReduce(path_graph(4)).run(BFS(source=2))
        assert np.isinf(r.vertex_values[:2]).all()
        assert r.vertex_values[2:].tolist() == [0, 1]

    def test_bfs_matches_networkx(self):
        g = rmat(9, 4000, seed=2)
        want = reference_bfs_depths(g, 1)
        got = GraphReduce(g).run(BFS(source=1)).vertex_values
        assert np.array_equal(got, want)

    def test_bfs_gather_variant_matches(self):
        g = erdos_renyi(150, 900, seed=3)
        a = GraphReduce(g).run(BFS(source=0)).vertex_values
        b = GraphReduce(g).run(BFSGather(source=0)).vertex_values
        assert np.array_equal(a, b)

    def test_sssp_matches_dijkstra(self):
        import networkx as nx

        g = erdos_renyi(120, 800, seed=4).with_random_weights(seed=5)
        G = nx.DiGraph()
        G.add_nodes_from(range(120))
        for s, d, w in zip(g.src.tolist(), g.dst.tolist(), g.weights.tolist()):
            G.add_edge(s, d, weight=w)
        want = np.full(120, np.inf)
        for v, d in nx.single_source_dijkstra_path_length(G, 0).items():
            want[v] = d
        got = GraphReduce(g).run(SSSP(source=0)).vertex_values
        reached = ~np.isinf(want)
        np.testing.assert_allclose(got[reached], want[reached], rtol=1e-5)
        assert np.isinf(got[~reached]).all()

    def test_cc_labels_components(self):
        # Two disjoint cliques stored undirected.
        import networkx as nx

        g = erdos_renyi(60, 240, seed=6).symmetrized()
        G = nx.Graph(zip(g.src.tolist(), g.dst.tolist()))
        G.add_nodes_from(range(60))
        got = GraphReduce(g).run(ConnectedComponents()).vertex_values
        for comp in nx.connected_components(G):
            labels = {got[v] for v in comp}
            assert len(labels) == 1
            assert labels.pop() == min(comp)

    def test_pagerank_matches_networkx(self):
        import networkx as nx

        import numpy as _np

        from repro.graph.edgelist import EdgeList
        from repro.graph.generators import cycle_graph

        # Union an RMAT graph with a cycle so no vertex is dangling --
        # NetworkX redistributes dangling mass, which the GAS recursion
        # (like the paper's formulation) does not.
        a = rmat(8, 2000, seed=7)
        c = cycle_graph(a.num_vertices)
        g = EdgeList(
            a.num_vertices,
            _np.concatenate([a.src, c.src]),
            _np.concatenate([a.dst, c.dst]),
        ).deduplicated()
        r = GraphReduce(g).run(PageRank(tolerance=1e-7))
        pr = nx.pagerank(
            nx.DiGraph(zip(g.src.tolist(), g.dst.tolist())), alpha=0.85, tol=1e-12
        )
        want = np.array([pr.get(i, 0.0) for i in range(g.num_vertices)])
        got = r.vertex_values / r.vertex_values.sum()
        mask = want > 0
        np.testing.assert_allclose(got[mask], want[mask], rtol=5e-3)

    def test_spmv_matches_scipy(self):
        import scipy.sparse as sp

        g = erdos_renyi(80, 500, seed=8).with_random_weights(seed=9)
        x = np.random.default_rng(10).random(80).astype(np.float32)
        r = GraphReduce(g).run(SpMV(x))
        A = sp.coo_matrix((g.weights, (g.src, g.dst)), shape=(80, 80))
        np.testing.assert_allclose(r.vertex_values, (A.T @ x), rtol=1e-4, atol=1e-5)
        assert r.iterations == 1

    def test_heat_diffusion_properties(self):
        g = mesh2d(8, 8)
        r = GraphReduce(g).run(HeatSimulation(hot_vertices=(0,), hot_temperature=100.0))
        vals = r.vertex_values
        assert vals[0] == pytest.approx(100.0)  # source pinned
        assert np.all(vals >= -1e-4) and np.all(vals <= 100.0 + 1e-4)
        # Monotone decay with distance from the corner source.
        assert vals[1] > vals[63]

    def test_star_graph_bfs_one_hop(self):
        r = GraphReduce(star_graph(50)).run(BFS(source=0))
        assert r.vertex_values[0] == 0
        assert np.all(r.vertex_values[1:] == 1)
        assert r.iterations == 2


class TestOptimizationEquivalence:
    """Every optimization configuration computes identical results."""

    @pytest.mark.parametrize("prog_factory", [
        lambda: BFS(source=1),
        lambda: SSSP(source=1),
        lambda: PageRank(tolerance=1e-4),
        lambda: ConnectedComponents(),
    ])
    def test_all_switch_combos_equal(self, prog_factory):
        g = rmat(8, 1500, seed=11).symmetrized()
        base = GraphReduce(g, options=GraphReduceOptions()).run(prog_factory())
        combos = [
            GraphReduceOptions.unoptimized(),
            GraphReduceOptions(frontier_skipping=False),
            GraphReduceOptions(fusion=False),
            GraphReduceOptions(fuse_gather=True),
            GraphReduceOptions(async_streams=False, spray=False),
            GraphReduceOptions(cache_policy="never"),
            GraphReduceOptions(cache_policy="greedy"),
            GraphReduceOptions(num_partitions=7),
            GraphReduceOptions(partition_logic="vertex_balanced"),
        ]
        for opts in combos:
            r = GraphReduce(g, options=opts).run(prog_factory())
            assert np.array_equal(r.vertex_values, base.vertex_values), opts
            assert r.iterations == base.iterations

    def test_optimized_moves_fewer_bytes(self):
        g = rmat(10, 10_000, seed=12)
        opts_stream = GraphReduceOptions(cache_policy="never")
        opt = GraphReduce(g, options=opts_stream).run(BFS(source=1))
        unopt = GraphReduce(g, options=GraphReduceOptions.unoptimized()).run(BFS(source=1))
        assert opt.stats.h2d_bytes < unopt.stats.h2d_bytes
        assert opt.memcpy_time < unopt.memcpy_time
        assert opt.sim_time < unopt.sim_time

    def test_fuse_gather_extension_reduces_memcpy(self):
        g = rmat(10, 10_000, seed=21)
        base = GraphReduce(
            g, options=GraphReduceOptions(cache_policy="never")
        ).run(PageRank(tolerance=1e-3))
        fused = GraphReduce(
            g, options=GraphReduceOptions(cache_policy="never", fuse_gather=True)
        ).run(PageRank(tolerance=1e-3))
        assert np.array_equal(base.vertex_values, fused.vertex_values)
        # The update array no longer crosses PCIe twice per iteration.
        assert fused.stats.h2d_bytes < base.stats.h2d_bytes
        assert fused.stats.d2h_bytes < base.stats.d2h_bytes
        assert fused.memcpy_time < base.memcpy_time

    def test_frontier_skipping_skips_shards(self):
        g = road_network(20, 20, 10, seed=13)
        opts = GraphReduceOptions(cache_policy="never", num_partitions=8)
        r = GraphReduce(g, options=opts).run(BFS(source=0))
        assert r.stats.shards_skipped > 0


class TestModes:
    def test_in_memory_mode_auto(self):
        g = erdos_renyi(100, 600, seed=14)
        r = GraphReduce(g).run(BFS(source=0))
        assert r.in_memory_mode
        # After the initial cache upload, iterations move no shard bytes:
        # H2D equals residents + one full graph upload.
        assert r.stats.h2d_bytes > 0

    def test_never_cache_streams_every_iteration(self):
        g = erdos_renyi(100, 600, seed=14)
        r_cache = GraphReduce(g).run(PageRank(tolerance=1e-3))
        r_stream = GraphReduce(
            g, options=GraphReduceOptions(cache_policy="never")
        ).run(PageRank(tolerance=1e-3))
        assert not r_stream.in_memory_mode
        assert r_stream.stats.h2d_bytes > r_cache.stats.h2d_bytes

    def test_out_of_memory_graph_streams(self):
        # Shrink the device so the graph cannot cache.
        g = rmat(10, 20_000, seed=15)
        machine = MachineSpec(
            device=DeviceSpec(memory_bytes=120_000), host=HostSpec()
        )
        r = GraphReduce(g, machine=machine).run(BFS(source=1))
        assert not r.in_memory_mode
        assert r.num_partitions > 1
        want = reference_bfs_depths(g, 1)
        assert np.array_equal(r.vertex_values, want)

    def test_vertex_set_too_big_raises(self):
        g = erdos_renyi(1000, 3000, seed=16)
        machine = MachineSpec(device=DeviceSpec(memory_bytes=5_000))
        with pytest.raises(ValueError, match="vertex set"):
            GraphReduce(g, machine=machine).run(BFS())

    def test_unknown_cache_policy(self):
        g = erdos_renyi(20, 50, seed=17)
        with pytest.raises(ValueError, match="cache_policy"):
            GraphReduce(g, options=GraphReduceOptions(cache_policy="maybe")).run(BFS())

    def test_max_iterations_cuts_off(self):
        g = path_graph(100)
        r = GraphReduce(g).run(BFS(source=0), max_iterations=5)
        assert r.iterations == 5
        assert not r.converged


class TestMetrics:
    def test_times_consistent(self):
        g = rmat(9, 5000, seed=18)
        r = GraphReduce(g, options=GraphReduceOptions(cache_policy="never")).run(
            PageRank(tolerance=1e-3)
        )
        assert r.sim_time > 0
        assert r.memcpy_busy_span <= r.memcpy_time + 1e-12
        assert r.memcpy_busy_span <= r.sim_time + 1e-12
        assert 0 < r.memcpy_fraction <= 1
        assert r.stats.kernel_launches > 0
        assert r.stats.h2d_count > 0

    def test_frontier_history_recorded(self):
        g = path_graph(10)
        r = GraphReduce(g).run(BFS(source=0))
        # Path: frontier stays size 1 for 10 iterations then empties.
        assert r.frontier_history[:10] == [1] * 10
        assert r.frontier_history[-1] == 0

    def test_k_respects_partition_count(self):
        g = erdos_renyi(100, 500, seed=19)
        r = GraphReduce(
            g, options=GraphReduceOptions(num_partitions=3, cache_policy="never")
        ).run(BFS(source=0))
        assert 1 <= r.concurrent_shards <= 3
