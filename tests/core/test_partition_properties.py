"""Property tests for the Partition Engine (hypothesis).

Invariants from Section 4.2: the vertex intervals are a disjoint cover
of [0, n); every edge lands in exactly one shard's in-edge set and one
shard's out-edge set; within a shard the in-edges stay sorted by
destination and the out-edges by source; and the edge-balanced logic
keeps every shard's (in + out) load within one vertex's worth of the
ideal total/p split.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    PartitionEngine,
    edge_balanced_intervals,
    vertex_balanced_intervals,
)
from repro.graph.edgelist import EdgeList


@st.composite
def graphs_and_p(draw, max_vertices=40, max_edges=120, max_partitions=8):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    vid = st.integers(min_value=0, max_value=n - 1)
    src = draw(st.lists(vid, min_size=m, max_size=m))
    dst = draw(st.lists(vid, min_size=m, max_size=m))
    p = draw(st.integers(min_value=1, max_value=max_partitions))
    edges = EdgeList(n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64))
    return edges, p


class TestBoundaries:
    @settings(max_examples=100)
    @given(gp=graphs_and_p())
    def test_both_logics_produce_valid_boundaries(self, gp):
        edges, p = gp
        for logic in (edge_balanced_intervals, vertex_balanced_intervals):
            b = logic(edges, p)
            assert len(b) == p + 1
            assert b[0] == 0 and b[-1] == edges.num_vertices
            assert np.all(np.diff(b) >= 0)

    @settings(max_examples=100)
    @given(gp=graphs_and_p())
    def test_intervals_cover_vertices_disjointly(self, gp):
        edges, p = gp
        sharded = PartitionEngine().partition(edges, p)
        covered = np.concatenate(
            [np.arange(s.start, s.stop) for s in sharded.shards]
        )
        assert np.array_equal(covered, np.arange(edges.num_vertices))
        for v in range(edges.num_vertices):
            i = sharded.interval_of(v)
            assert sharded.shards[i].start <= v < sharded.shards[i].stop


class TestShardEdges:
    @settings(max_examples=100)
    @given(gp=graphs_and_p())
    def test_every_edge_in_exactly_one_shard_per_layout(self, gp):
        edges, p = gp
        sharded = PartitionEngine().partition(edges, p)
        in_ids = np.concatenate([s.csc.edge_ids for s in sharded.shards])
        out_ids = np.concatenate([s.csr.edge_ids for s in sharded.shards])
        assert np.array_equal(np.sort(in_ids), np.arange(edges.num_edges))
        assert np.array_equal(np.sort(out_ids), np.arange(edges.num_edges))

    @settings(max_examples=100)
    @given(gp=graphs_and_p())
    def test_shard_layouts_match_global_adjacency(self, gp):
        edges, p = gp
        sharded = PartitionEngine().partition(edges, p)
        for s in sharded.shards:
            rows = np.repeat(
                np.arange(s.start, s.stop), np.diff(s.csc.indptr)
            )
            # In-edges: slot rows are the destinations (sorted), indices
            # the sources, edge_ids the original positions.
            assert np.array_equal(edges.dst[s.csc.edge_ids], rows)
            assert np.array_equal(edges.src[s.csc.edge_ids], s.csc.indices)
            assert np.all(np.diff(rows) >= 0)
            out_rows = np.repeat(
                np.arange(s.start, s.stop), np.diff(s.csr.indptr)
            )
            assert np.array_equal(edges.src[s.csr.edge_ids], out_rows)
            assert np.array_equal(edges.dst[s.csr.edge_ids], s.csr.indices)
            assert np.all(np.diff(out_rows) >= 0)


class TestEdgeBalance:
    @settings(max_examples=100)
    @given(gp=graphs_and_p())
    def test_load_within_one_vertex_of_ideal(self, gp):
        """Contiguous prefix-sum splitting cannot beat vertex
        granularity: shard load <= total/p + the heaviest single vertex."""
        edges, p = gp
        sharded = PartitionEngine().partition(edges, p, logic="edge_balanced")
        load = edges.out_degrees() + edges.in_degrees()
        total = int(load.sum())
        max_vertex = int(load.max()) if edges.num_vertices else 0
        for s in sharded.shards:
            shard_load = int(load[s.start : s.stop].sum())
            assert shard_load == s.num_edges
            assert shard_load <= total / sharded.num_partitions + max_vertex + 1

    @settings(max_examples=100)
    @given(gp=graphs_and_p())
    def test_requested_p_clamped_to_vertices(self, gp):
        edges, p = gp
        sharded = PartitionEngine().partition(edges, p)
        assert 1 <= sharded.num_partitions <= max(edges.num_vertices, 1)
        assert sharded.num_partitions == min(p, max(edges.num_vertices, 1))
