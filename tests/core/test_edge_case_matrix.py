"""Degenerate graphs through every runtime configuration.

The existing edge-case suite covers default options; this matrix locks
in that empty, single-vertex and all-self-loop graphs produce the same
(reference-checked) answers under every optimization combination --
unoptimized baseline, async execution, gather fusion, streaming with
LRU caching, SSD host backing, and observability off.
"""

import numpy as np
import pytest

from repro.algorithms import BFS, ConnectedComponents, PageRank, SSSP
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.graph.edgelist import EdgeList

OPTION_SETS = {
    "default": GraphReduceOptions(),
    "unoptimized": GraphReduceOptions.unoptimized(),
    "async_mode": GraphReduceOptions(execution_mode="async"),
    "fuse_gather": GraphReduceOptions(fuse_gather=True),
    "streaming_lru": GraphReduceOptions(cache_policy="lru", num_partitions=4),
    "ssd_backed": GraphReduceOptions(host_backing="ssd", cache_policy="never"),
    "no_observe": GraphReduceOptions(observe=False, trace=False),
}

GRAPHS = {
    "empty0": lambda: EdgeList.from_pairs([], num_vertices=0),
    "empty7": lambda: EdgeList.from_pairs([], num_vertices=7),
    "single": lambda: EdgeList.from_pairs([], num_vertices=1),
    "single_loop": lambda: EdgeList.from_pairs([(0, 0)], num_vertices=1),
    "all_self_loops": lambda: EdgeList.from_pairs(
        [(i, i) for i in range(5)], num_vertices=5
    ),
}

pytestmark = pytest.mark.parametrize("opts_name", sorted(OPTION_SETS))


def run(graph_name, opts_name, program):
    g = GRAPHS[graph_name]()
    if program.needs_weights and g.weights is None:
        g = g.with_unit_weights()
    return GraphReduce(g, options=OPTION_SETS[opts_name]).run(program)


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_bfs(graph_name, opts_name):
    if graph_name == "empty0":
        pytest.skip("BFS needs a source vertex")
    r = run(graph_name, opts_name, BFS(source=0))
    assert r.converged
    n = len(r.vertex_values)
    # Depth 0 at the source (self-loops add no depth), inf elsewhere.
    assert r.vertex_values[0] == 0.0
    assert np.isinf(r.vertex_values[1:]).all()
    assert n == GRAPHS[graph_name]().num_vertices


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_sssp(graph_name, opts_name):
    if graph_name == "empty0":
        pytest.skip("SSSP needs a source vertex")
    r = run(graph_name, opts_name, SSSP(source=0))
    assert r.converged
    assert r.vertex_values[0] == 0.0
    assert np.isinf(r.vertex_values[1:]).all()


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_pagerank(graph_name, opts_name):
    r = run(graph_name, opts_name, PageRank())
    assert r.converged
    n = len(r.vertex_values)
    if graph_name in ("single_loop", "all_self_loops"):
        # Every vertex keeps its whole rank: x = 0.15 + 0.85 * x -> 1.
        np.testing.assert_allclose(r.vertex_values, np.ones(n), atol=2e-3)
    else:
        # No in-edges anywhere: ranks settle at the base 0.15.
        np.testing.assert_allclose(
            r.vertex_values, np.full(n, 0.15), atol=1e-6
        )


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_cc(graph_name, opts_name):
    r = run(graph_name, opts_name, ConnectedComponents())
    assert r.converged
    n = len(r.vertex_values)
    # Self-loops connect nothing: every vertex is its own component.
    assert np.array_equal(r.vertex_values, np.arange(n, dtype=np.float32))


def test_empty_graph_zero_iterations_stats(opts_name):
    """A 7-vertex empty graph converges with sane accounting."""
    r = run("empty7", opts_name, ConnectedComponents())
    assert r.converged
    assert r.stats.shards_processed >= 0
    assert r.sim_time >= 0.0
    if OPTION_SETS[opts_name].observe:
        (root,) = r.observer.roots
        assert root.attrs["converged"]
