"""GASProgram contract: phase detection, validation, UserInfoTuple."""

import numpy as np
import pytest

from repro.algorithms import BFS, SSSP, PageRank, ConnectedComponents, SpMV
from repro.core.api import GASProgram


def test_phase_detection_bfs_apply_only():
    prog = BFS()
    assert not prog.has_gather
    assert not prog.has_scatter


def test_phase_detection_gather_algorithms():
    for prog in (SSSP(), PageRank(), ConnectedComponents()):
        assert prog.has_gather
        assert not prog.has_scatter


def test_user_info_tuple_contents():
    info = SSSP().user_info()
    assert info.gather is not None
    assert info.gather_reduce is np.minimum
    assert info.scatter is None
    assert info.vertex_dtype == np.float32
    assert info.edge_dtype is None


def test_user_info_tuple_bfs_elides_gather():
    info = BFS().user_info()
    assert info.gather is None
    assert info.gather_reduce is None


def test_validate_requires_apply():
    class NoApply(GASProgram):
        pass

    with pytest.raises(TypeError, match="apply"):
        NoApply().validate()


def test_validate_requires_ufunc_reduce():
    class BadReduce(GASProgram):
        gather_reduce = min  # not a ufunc -> cannot reduceat

        def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
            return src_vals

        def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
            return old_vals, np.zeros(len(vids), dtype=bool)

    with pytest.raises(TypeError, match="ufunc"):
        BadReduce().validate()


def test_paper_programs_validate():
    for prog in (BFS(), SSSP(), PageRank(), ConnectedComponents(), SpMV(np.zeros(3))):
        prog.validate()


def test_default_edge_state_is_none():
    class P(GASProgram):
        def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
            return old_vals, np.zeros(len(vids), dtype=bool)

    class Ctx:
        num_vertices = 4
        num_edges = 7

    assert P().init_edge_state(Ctx()) is None


def test_edge_state_allocated_when_typed():
    class P(GASProgram):
        edge_dtype = np.float32

        def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
            return old_vals, np.zeros(len(vids), dtype=bool)

    class Ctx:
        num_vertices = 4
        num_edges = 7

    state = P().init_edge_state(Ctx())
    assert state.shape == (7,)
    assert state.dtype == np.float32
