"""Degenerate inputs: empty graphs, singletons, self-loops, empty shards."""

import numpy as np
import pytest

from repro.algorithms import BFS, ConnectedComponents, PageRank, SSSP
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.graph.edgelist import EdgeList


def empty_graph(n=10):
    return EdgeList.from_pairs([], num_vertices=n)


class TestEmptyGraph:
    def test_bfs(self):
        r = GraphReduce(empty_graph()).run(BFS(source=3))
        assert r.vertex_values[3] == 0
        assert np.isinf(np.delete(r.vertex_values, 3)).all()
        assert r.converged

    def test_pagerank(self):
        r = GraphReduce(empty_graph()).run(PageRank())
        np.testing.assert_allclose(r.vertex_values, 0.15, atol=1e-6)

    def test_cc_labels_are_ids(self):
        r = GraphReduce(empty_graph()).run(ConnectedComponents())
        assert np.array_equal(r.vertex_values, np.arange(10, dtype=np.float32))

    def test_streaming_mode(self):
        r = GraphReduce(
            empty_graph(50),
            options=GraphReduceOptions(cache_policy="never", num_partitions=4),
        ).run(BFS(source=0))
        assert r.converged


class TestSingleton:
    def test_one_vertex(self):
        g = EdgeList.from_pairs([], num_vertices=1)
        r = GraphReduce(g).run(BFS(source=0))
        assert r.vertex_values.tolist() == [0.0]

    def test_zero_vertices(self):
        g = EdgeList.from_pairs([], num_vertices=0)
        r = GraphReduce(g).run(ConnectedComponents())
        assert len(r.vertex_values) == 0
        assert r.converged


class TestSelfLoops:
    def test_bfs_with_self_loop(self):
        g = EdgeList.from_pairs([(0, 0), (0, 1)], num_vertices=2)
        r = GraphReduce(g).run(BFS(source=0))
        assert r.vertex_values.tolist() == [0.0, 1.0]
        assert r.converged  # the self-loop must not spin the frontier

    def test_sssp_with_self_loop(self):
        g = EdgeList.from_pairs(
            [(0, 0), (0, 1)], num_vertices=2, weights=[5.0, 2.0]
        )
        r = GraphReduce(g).run(SSSP(source=0))
        assert r.vertex_values.tolist() == [0.0, 2.0]

    def test_cc_with_self_loops_only(self):
        g = EdgeList.from_pairs([(0, 0), (1, 1)], num_vertices=2)
        r = GraphReduce(g).run(ConnectedComponents())
        assert r.vertex_values.tolist() == [0.0, 1.0]


class TestSparseShards:
    def test_isolated_vertex_heavy_graph(self):
        # Most shards hold no edges at all.
        g = EdgeList.from_pairs([(0, 999)], num_vertices=1000)
        r = GraphReduce(
            g, options=GraphReduceOptions(num_partitions=16, cache_policy="never")
        ).run(BFS(source=0))
        assert r.vertex_values[999] == 1.0
        assert np.isinf(r.vertex_values[1:999]).all()

    def test_all_edges_in_one_shard(self):
        pairs = [(i, i + 1) for i in range(20)]
        g = EdgeList.from_pairs(pairs, num_vertices=1000)
        r = GraphReduce(
            g, options=GraphReduceOptions(num_partitions=8)
        ).run(BFS(source=0))
        assert r.vertex_values[20] == 20.0
