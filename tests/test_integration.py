"""Cross-module integration: every algorithm on every graph family,

executed through GraphReduce and cross-checked against the shared host
executor (and hence against every baseline's semantics).
"""

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    BFSGather,
    ConnectedComponents,
    HeatSimulation,
    KCore,
    LabelPropagation,
    PageRank,
    SSSP,
)
from repro.baselines import HostGASExecutor
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.graph import generators as gen

FAMILIES = {
    "kron": lambda: gen.rmat(9, 4_000, seed=31),
    "mesh": lambda: gen.mesh2d(18, 18),
    "road": lambda: gen.road_network(15, 15, 20, seed=32),
    "web": lambda: gen.web_graph(9, 3_000, seed=33),
    "social": lambda: gen.social_graph(9, 2_000, seed=34),
    "banded": lambda: gen.banded(400, 25, 8, seed=35),
    "planar": lambda: gen.delaunay_graph(300, seed=36),
}

ALGOS = {
    "bfs": lambda: BFS(source=0),
    "bfs_gather": lambda: BFSGather(source=0),
    "sssp": lambda: SSSP(source=0),
    "pagerank": lambda: PageRank(tolerance=1e-4),
    "cc": lambda: ConnectedComponents(),
    "kcore": lambda: KCore(k=2),
    "labelprop": lambda: LabelPropagation(),
    "heat": lambda: HeatSimulation(hot_vertices=(0,), max_iterations=60),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("algo", sorted(ALGOS))
def test_graphreduce_matches_host_executor(family, algo):
    graph = FAMILIES[family]()
    if algo in ("cc", "kcore", "labelprop") and not graph.undirected:
        graph = graph.symmetrized()
    gr = GraphReduce(graph).run(ALGOS[algo]())
    host = HostGASExecutor(graph, ALGOS[algo]()).run()
    np.testing.assert_array_equal(gr.vertex_values, host.vertex_values)
    assert gr.iterations == host.iterations


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_streaming_mode_identical_on_every_family(family):
    graph = FAMILIES[family]()
    cached = GraphReduce(graph).run(BFS(source=0))
    streamed = GraphReduce(
        graph, options=GraphReduceOptions(cache_policy="never", num_partitions=6)
    ).run(BFS(source=0))
    assert np.array_equal(cached.vertex_values, streamed.vertex_values)
    # Streaming moves shard bytes every iteration; caching only once.
    assert streamed.stats.h2d_bytes >= cached.stats.h2d_bytes


def test_full_paper_pipeline_smoke():
    """One miniature end-to-end pass of the Table-3 pipeline."""
    from repro.baselines import GraphChi, XStream

    graph = gen.rmat(10, 15_000, seed=37)
    prog = lambda: BFS(source=int(np.argmax(graph.out_degrees())))
    gr = GraphReduce(graph, options=GraphReduceOptions(cache_policy="never")).run(prog())
    chi = GraphChi().run(graph, prog())
    xs = XStream().run(graph, prog())
    assert np.array_equal(chi.vertex_values, gr.vertex_values)
    assert np.array_equal(xs.vertex_values, gr.vertex_values)
    # The paper's ordering: GR < X-Stream < GraphChi.
    assert gr.sim_time < xs.sim_time < chi.sim_time
