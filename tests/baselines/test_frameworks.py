"""Baseline frameworks: result equivalence, cost-model behaviours,

capacity limits."""

import numpy as np
import pytest

from repro.algorithms import BFS, SSSP, PageRank, ConnectedComponents
from repro.baselines import CuSha, GraphChi, HostGASExecutor, MapGraph, Totem, XStream
from repro.core.runtime import GraphReduce
from repro.graph.generators import erdos_renyi, mesh2d, rmat, road_network
from repro.sim.memory import DeviceOOMError
from repro.sim.specs import DeviceSpec

ALL_CPU = [GraphChi, XStream, Totem]
ALL_GPU = [CuSha, MapGraph]


@pytest.fixture(scope="module")
def kron():
    return rmat(10, 10_000, seed=1)


@pytest.fixture(scope="module")
def mesh():
    # Wide-and-short so row-major vertex intervals keep the +/-ny stencil
    # offsets partition-local (as in the real nlpkkt160-scale meshes).
    return mesh2d(50, 16)


@pytest.fixture(scope="module")
def oversized():
    """A graph exceeding the scaled device memory (kron21-class)."""
    return rmat(14, 1_500_000, seed=4)


class TestExecutor:
    def test_executor_matches_graphreduce(self, kron):
        for prog_factory in (
            lambda: BFS(source=1),
            lambda: SSSP(source=1),
            lambda: PageRank(tolerance=1e-4),
            lambda: ConnectedComponents(),
        ):
            gr = GraphReduce(kron).run(prog_factory())
            trace = HostGASExecutor(kron, prog_factory()).run()
            assert np.array_equal(trace.vertex_values, gr.vertex_values)
            assert trace.iterations == gr.iterations
            assert trace.converged == gr.converged

    def test_profiles_census_shapes(self, kron):
        trace = HostGASExecutor(kron, BFS(source=1)).run()
        p0 = trace.profiles[0]
        assert p0.active_vertices == 1  # just the source
        assert p0.changed_vertices == 1
        assert p0.local_out_edges <= p0.changed_out_edges
        total_activated = sum(p.changed_vertices for p in trace.profiles)
        reached = np.count_nonzero(~np.isinf(trace.vertex_values))
        assert total_activated == reached

    def test_locality_census_mesh_vs_kron(self, kron, mesh):
        """Meshes keep updates partition-local; Kronecker graphs do not."""
        def locality(graph):
            trace = HostGASExecutor(graph, ConnectedComponents(), 16).run()
            tot = sum(p.changed_out_edges for p in trace.profiles)
            loc = sum(p.local_out_edges for p in trace.profiles)
            return loc / max(tot, 1)

        assert locality(mesh) > 0.7
        assert locality(kron) < 0.4
        assert locality(mesh) > 2 * locality(kron)


class TestEquivalence:
    @pytest.mark.parametrize("framework_cls", ALL_CPU + ALL_GPU)
    def test_all_frameworks_agree_with_graphreduce(self, framework_cls, kron):
        gr = GraphReduce(kron).run(BFS(source=1))
        r = framework_cls().run(kron, BFS(source=1))
        assert np.array_equal(r.vertex_values, gr.vertex_values)
        assert r.iterations == gr.iterations
        assert r.sim_time > 0
        assert r.breakdown


class TestCostModels:
    def test_xstream_scan_bounded_by_full_sweeps(self, kron):
        """The scatter scan is partition-selective: at most one full

        sweep per iteration, and a lone active vertex costs only ~one
        partition's worth of edges."""
        xs = XStream()
        r = xs.run(kron, BFS(source=1))
        scan = r.breakdown["scatter_scan"]
        full = r.iterations * kron.num_edges / xs.config.scan_rate
        assert scan <= full
        one_partition = kron.num_edges / xs.config.num_partitions / xs.config.scan_rate
        assert scan >= one_partition

    def test_xstream_shuffle_cheaper_on_mesh(self, kron, mesh):
        """Same update count costs less when partition-local."""
        xs = XStream()
        r_mesh = xs.run(mesh, ConnectedComponents())
        r_kron = xs.run(kron, ConnectedComponents())
        # Per-update shuffle cost from the executor's census:
        t_mesh = HostGASExecutor(mesh, ConnectedComponents(), 16).run()
        t_kron = HostGASExecutor(kron, ConnectedComponents(), 16).run()
        mesh_per = r_mesh.breakdown["update_shuffle"] / max(
            sum(p.changed_out_edges for p in t_mesh.profiles), 1
        )
        kron_per = r_kron.breakdown["update_shuffle"] / max(
            sum(p.changed_out_edges for p in t_kron.profiles), 1
        )
        assert mesh_per < kron_per / 2

    def test_graphchi_selective_scheduling_helps_bfs(self):
        """A low-activity traversal streams less than an all-active one."""
        g = road_network(15, 15, 10, seed=2)
        chi = GraphChi()
        bfs = chi.run(g, BFS(source=0))
        cc = chi.run(g, ConnectedComponents())
        per_iter_bfs = bfs.breakdown["shard_stream"] / bfs.iterations
        per_iter_cc = cc.breakdown["shard_stream"] / cc.iterations
        assert per_iter_bfs < per_iter_cc

    def test_cusha_pays_full_sweeps(self, kron):
        r = CuSha().run(kron, BFS(source=1))
        per_iter = CuSha().config.edge_rate
        assert r.breakdown["compute"] >= r.iterations * kron.num_edges / per_iter

    def test_mapgraph_beats_cusha_on_high_diameter_bfs(self):
        # Needs enough edges for CuSha's full sweeps to outweigh launch
        # overheads -- the belgium_osm regime of Table 4.
        g = road_network(150, 150, 500, seed=3)
        t_cusha = CuSha().run(g, BFS(source=0)).sim_time
        t_mg = MapGraph().run(g, BFS(source=0)).sim_time
        assert t_mg < t_cusha

    def test_cusha_beats_mapgraph_on_kron_pagerank(self, kron):
        t_cusha = CuSha().run(kron, PageRank(tolerance=1e-4)).sim_time
        t_mg = MapGraph().run(kron, PageRank(tolerance=1e-4)).sim_time
        assert t_cusha < t_mg

    def test_gpu_frameworks_oom_on_large_graph(self, oversized):
        for cls in ALL_GPU:
            with pytest.raises(DeviceOOMError):
                cls().run(oversized, BFS(source=1))

    def test_graphreduce_handles_what_gpu_frameworks_cannot(self, oversized):
        r = GraphReduce(oversized).run(BFS(source=1))
        assert r.converged
        assert not r.in_memory_mode

    def test_totem_gpu_fraction_shrinks_with_graph_size(self, oversized):
        small = rmat(10, 8_000, seed=5)
        totem = Totem()
        assert totem.gpu_utilization(small) > totem.gpu_utilization(oversized)
        assert totem.gpu_utilization(oversized) < 1.0

    def test_totem_big_graph_cpu_bound(self, oversized):
        r = Totem().run(oversized, PageRank(tolerance=1e-3))
        assert r.breakdown["cpu_side"] > r.breakdown["gpu_side"]


class TestTable2Shape:
    def test_cusha_beats_xstream_most_on_kron(self, kron, mesh):
        """Table 2: the GPU advantage is largest on skewed graphs (389x

        on kron) and smallest on road networks (3x on belgium_osm)."""
        road = road_network(150, 150, 500, seed=7)
        def speedup(g):
            xs = XStream().run(g, BFS(source=0)).sim_time
            cu = CuSha().run(g, BFS(source=0)).sim_time
            return xs / cu

        # The paper's gap (389x on kron vs 3x on belgium) compresses in a
        # level-synchronous model (see EXPERIMENTS.md), but the ordering
        # -- GPU wins most on skewed graphs, least on road networks --
        # must hold.
        assert speedup(kron) > 2 * speedup(road)
        assert speedup(road) > 1  # GPU still wins
