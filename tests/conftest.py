"""Shared test configuration."""

from hypothesis import HealthCheck, settings

# Graph construction inside strategies is slow relative to hypothesis's
# default deadline; property tests bound example counts themselves.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")
