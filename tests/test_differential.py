"""Differential tests: GraphReduce vs the pure-Python references.

Every fixture graph runs BFS, SSSP, PageRank and ConnectedComponents
through the full engine (partitioning, movement, fusion, frontier
management) and must agree with the loop-and-dict references in
``tests/references.py`` -- exactly, because the references reproduce the
engine's float32 rounding and reduction order.
"""

import numpy as np
import pytest

from tests import references
from tests.fixture_graphs import FIXTURE_NAMES, build
from repro.algorithms import BFS, ConnectedComponents, PageRank, SSSP
from repro.core.runtime import GraphReduce

pytestmark = pytest.mark.parametrize("graph_name", FIXTURE_NAMES)


def _mismatch(engine: np.ndarray, ref: np.ndarray) -> str:
    bad = np.flatnonzero(~((engine == ref) | (np.isinf(engine) & np.isinf(ref))))
    head = ", ".join(
        f"v{int(i)}: engine={engine[i]!r} ref={ref[i]!r}" for i in bad[:5]
    )
    return f"{len(bad)} vertices disagree ({head})"


def test_bfs_matches_reference(graph_name):
    g = build(graph_name)
    result = GraphReduce(g).run(BFS(source=0))
    expected = references.bfs_levels(g, source=0)
    assert np.array_equal(result.vertex_values, expected), _mismatch(
        result.vertex_values, expected
    )
    assert result.converged


def test_sssp_matches_reference(graph_name):
    g = build(graph_name).with_random_weights(seed=21)
    result = GraphReduce(g).run(SSSP(source=0))
    expected = references.sssp_distances(g, source=0)
    assert np.array_equal(result.vertex_values, expected), _mismatch(
        result.vertex_values, expected
    )
    assert result.converged


def test_pagerank_matches_reference(graph_name):
    g = build(graph_name)
    result = GraphReduce(g).run(PageRank(tolerance=1e-3))
    expected, ref_iters, ref_sizes = references.pagerank(g, tolerance=1e-3)
    # Trajectory must match exactly; values may differ in the last ULP
    # because reduceat sums pairwise (see references.pagerank).
    assert result.iterations == ref_iters
    assert result.frontier_history[:ref_iters] == ref_sizes
    np.testing.assert_allclose(
        result.vertex_values, expected, rtol=3e-6, atol=0
    )


def test_cc_matches_reference(graph_name):
    g = build(graph_name)
    result = GraphReduce(g).run(ConnectedComponents())
    expected = references.cc_labels(g)
    assert np.array_equal(result.vertex_values, expected), _mismatch(
        result.vertex_values, expected
    )
    assert result.converged
