"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, load_graph, main
from repro.graph.generators import erdos_renyi
from repro.graph.io import save_edgelist_txt, save_npz


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_datasets_lists_all(capsys):
    code, out = run_cli(capsys, "datasets")
    assert code == 0
    for name in ("kron_g500-logn21", "ak2010", "orkut"):
        assert name in out
    assert "out-of-memory" in out and "in-memory" in out


def test_info_shows_machine(capsys):
    code, out = run_cli(capsys, "info")
    assert code == 0
    assert "K20c" in out
    assert "PCIe" in out


def test_run_on_dataset(capsys):
    code, out = run_cli(
        capsys, "run", "--graph", "delaunay_n13", "--algorithm", "bfs", "--source", "3"
    )
    assert code == 0
    assert "converged=True" in out
    assert "sim time" in out


def test_run_unoptimized_flag(capsys):
    code, out = run_cli(
        capsys, "run", "--graph", "delaunay_n13", "--algorithm", "cc", "--unoptimized"
    )
    assert code == 0
    assert "streaming" in out


def test_run_on_file(tmp_path, capsys):
    g = erdos_renyi(50, 200, seed=1)
    path = tmp_path / "g.txt"
    save_edgelist_txt(g, path)
    code, out = run_cli(capsys, "run", "--graph", str(path), "--algorithm", "pagerank")
    assert code == 0
    assert "pagerank" in out


def test_load_graph_npz(tmp_path):
    g = erdos_renyi(30, 90, seed=2)
    path = tmp_path / "g.npz"
    save_npz(g, path)
    h = load_graph(str(path))
    assert h.num_edges == 90


def test_unknown_graph_errors():
    with pytest.raises(SystemExit):
        load_graph("definitely-not-a-graph")


def test_compare_runs_all_frameworks(capsys):
    code, out = run_cli(
        capsys, "compare", "--graph", "delaunay_n13", "--algorithm", "bfs"
    )
    assert code == 0
    for fw in ("GraphReduce", "GraphChi", "X-Stream", "CuSha", "MapGraph", "Totem"):
        assert fw in out


def test_kcore_via_cli(capsys):
    code, out = run_cli(
        capsys, "run", "--graph", "delaunay_n13", "--algorithm", "kcore", "--k", "3"
    )
    assert code == 0


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
