"""Command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, load_graph, main
from repro.graph.generators import erdos_renyi
from repro.graph.io import save_edgelist_txt, save_npz


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_datasets_lists_all(capsys):
    code, out = run_cli(capsys, "datasets")
    assert code == 0
    for name in ("kron_g500-logn21", "ak2010", "orkut"):
        assert name in out
    assert "out-of-memory" in out and "in-memory" in out


def test_info_shows_machine(capsys):
    code, out = run_cli(capsys, "info")
    assert code == 0
    assert "K20c" in out
    assert "PCIe" in out


def test_run_on_dataset(capsys):
    code, out = run_cli(
        capsys, "run", "--graph", "delaunay_n13", "--algorithm", "bfs", "--source", "3"
    )
    assert code == 0
    assert "converged=True" in out
    assert "sim time" in out


def test_run_unoptimized_flag(capsys):
    code, out = run_cli(
        capsys, "run", "--graph", "delaunay_n13", "--algorithm", "cc", "--unoptimized"
    )
    assert code == 0
    assert "streaming" in out


def test_run_on_file(tmp_path, capsys):
    g = erdos_renyi(50, 200, seed=1)
    path = tmp_path / "g.txt"
    save_edgelist_txt(g, path)
    code, out = run_cli(capsys, "run", "--graph", str(path), "--algorithm", "pagerank")
    assert code == 0
    assert "pagerank" in out


def test_load_graph_npz(tmp_path):
    g = erdos_renyi(30, 90, seed=2)
    path = tmp_path / "g.npz"
    save_npz(g, path)
    h = load_graph(str(path))
    assert h.num_edges == 90


def test_unknown_graph_errors():
    with pytest.raises(SystemExit):
        load_graph("definitely-not-a-graph")


def test_compare_runs_all_frameworks(capsys):
    code, out = run_cli(
        capsys, "compare", "--graph", "delaunay_n13", "--algorithm", "bfs"
    )
    assert code == 0
    for fw in ("GraphReduce", "GraphChi", "X-Stream", "CuSha", "MapGraph", "Totem"):
        assert fw in out


def test_kcore_via_cli(capsys):
    code, out = run_cli(
        capsys, "run", "--graph", "delaunay_n13", "--algorithm", "kcore", "--k", "3"
    )
    assert code == 0


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


class TestPartition:
    def test_partition_then_run_from_store(self, tmp_path, capsys):
        g = erdos_renyi(60, 240, seed=4)
        save_npz(g, tmp_path / "g.npz")
        code, out = run_cli(
            capsys, "partition", str(tmp_path / "g.npz"),
            "--out", str(tmp_path / "store"), "--partitions", "4",
        )
        assert code == 0
        assert "4 shards" in out and "V=60" in out
        code, out = run_cli(
            capsys, "run", "--shard-store", str(tmp_path / "store"),
            "--algorithm", "pagerank-power", "--power-iterations", "5",
            "--memory-budget", "1",
        )
        assert code == 0
        assert "prefetch" in out  # counters printed for store-backed runs
        assert "cache capacity 1" in out

    def test_run_without_graph_or_store_errors(self, capsys):
        with pytest.raises(SystemExit, match="provide --graph or --shard-store"):
            main(["run", "--algorithm", "bfs"])

    def test_profile_reports_prefetch_row(self, tmp_path, capsys):
        g = erdos_renyi(60, 240, seed=4)
        save_npz(g, tmp_path / "g.npz")
        run_cli(
            capsys, "partition", str(tmp_path / "g.npz"),
            "--out", str(tmp_path / "store"),
        )
        code, out = run_cli(
            capsys, "profile", "--shard-store", str(tmp_path / "store"),
            "--algo", "pagerank-power", "--power-iterations", "5",
            "--out", str(tmp_path / "profile.json"),
        )
        assert code == 0
        assert "host prefetch" in out
        doc = json.loads((tmp_path / "profile.json").read_text())
        assert doc["prefetch"]["hits"] + doc["prefetch"]["faults"] > 0


class TestTrace:
    def test_writes_consistent_chrome_trace(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        code, out = run_cli(
            capsys,
            "trace",
            "--algo",
            "pagerank",
            "--graph",
            "delaunay_n13",
            "--out",
            str(out_path),
        )
        assert code == 0
        assert "chrome://tracing" in out
        assert "memcpy" in out and "gather_map" in out
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        cats = {ev.get("cat") for ev in doc["traceEvents"]}
        assert {"iteration", "phase", "h2d", "kernel"} <= cats

    def test_unoptimized_trace(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        code, out = run_cli(
            capsys,
            "trace",
            "--algo",
            "bfs",
            "--graph",
            "delaunay_n13",
            "--unoptimized",
            "--out",
            str(out_path),
        )
        assert code == 0
        assert out_path.exists()


class TestBenchCheck:
    def test_committed_snapshot_passes(self, capsys):
        code, out = run_cli(capsys, "bench-check")
        assert code == 0
        assert "ok: no phase regressed" in out
        assert "pagerank_rmat12" in out

    def test_update_then_check_round_trip(self, tmp_path, capsys):
        snap = tmp_path / "BENCH_test.json"
        code, out = run_cli(capsys, "bench-check", "--snapshot", str(snap), "--update")
        assert code == 0
        assert "wrote" in out
        code, out = run_cli(capsys, "bench-check", "--snapshot", str(snap))
        assert code == 0

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        """Halving every committed timing makes the fresh run look 2x
        slower -- the gate must trip (the ISSUE acceptance criterion)."""
        from repro.obs import bench

        doc = bench.load_snapshot("benchmarks/BENCH_baseline.json")
        crippled = {
            name: {
                **m,
                "sim_time": m["sim_time"] / 2,
                "phases": {ph: t / 2 for ph, t in m["phases"].items()},
            }
            for name, m in doc["benchmarks"].items()
        }
        snap = tmp_path / "BENCH_crippled.json"
        bench.save_snapshot(snap, crippled, tolerance=doc["tolerance"])
        code = main(["bench-check", "--snapshot", str(snap)])
        err = capsys.readouterr().err
        assert code == 1
        assert "regression(s)" in err
        assert "2.00x" in err

    def test_missing_snapshot_exits_2(self, tmp_path, capsys):
        code = main(["bench-check", "--snapshot", str(tmp_path / "nope.json")])
        err = capsys.readouterr().err
        assert code == 2
        assert "not found" in err


class TestProfile:
    def test_writes_profile_and_validates(self, tmp_path, capsys):
        out_path = tmp_path / "profile.json"
        trace_path = tmp_path / "trace.json"
        code, out = run_cli(
            capsys,
            "profile",
            "--algo",
            "pagerank",
            "--graph",
            "delaunay_n13",
            "--out",
            str(out_path),
            "--trace-out",
            str(trace_path),
        )
        assert code == 0
        assert "bottleneck" in out and "model validation" in out
        assert "[ok ]" in out and "FAIL" not in out
        doc = json.loads(out_path.read_text())
        assert doc["profile_version"] == 1
        assert doc["verdict"]["recommendation"]
        assert all(c["ok"] for c in doc["model_validation"])
        assert json.loads(trace_path.read_text())["traceEvents"]

    def test_streaming_profile(self, tmp_path, capsys):
        out_path = tmp_path / "profile.json"
        code, out = run_cli(
            capsys,
            "profile",
            "--algo",
            "bfs",
            "--graph",
            "delaunay_n13",
            "--cache-policy",
            "never",
            "--out",
            str(out_path),
        )
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert doc["counters"]["movement.h2d.copies"] > 0

    def test_unoptimized_profile(self, tmp_path, capsys):
        out_path = tmp_path / "profile.json"
        code, out = run_cli(
            capsys, "profile", "--algo", "cc", "--graph", "delaunay_n13",
            "--unoptimized", "--out", str(out_path),
        )
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert doc["overlap"]["efficiency"] == 0.0


class TestBenchDiff:
    @pytest.fixture()
    def profile_doc(self, tmp_path, capsys):
        path = tmp_path / "profile.json"
        code, _ = run_cli(
            capsys, "profile", "--algo", "pagerank", "--graph", "delaunay_n13",
            "--out", str(path),
        )
        assert code == 0
        return path

    def test_identical_profiles_pass(self, profile_doc, tmp_path, capsys):
        code, out = run_cli(
            capsys, "bench-diff", str(profile_doc), str(profile_doc)
        )
        assert code == 0
        assert "no timing metric regressed" in out

    def test_degraded_profile_exits_nonzero(self, profile_doc, tmp_path, capsys):
        """ISSUE acceptance: a deliberately degraded snapshot must fail."""
        doc = json.loads(profile_doc.read_text())
        doc["sim_time"] *= 1.5
        for ph in doc["phases"].values():
            ph["total_time"] *= 1.5
        degraded = tmp_path / "degraded.json"
        degraded.write_text(json.dumps(doc))
        code = main(["bench-diff", str(profile_doc), str(degraded)])
        captured = capsys.readouterr()
        assert code == 1
        assert "REGRESSION" in captured.out
        assert "regression(s)" in captured.err
        assert "sim_time" in captured.err

    def test_bench_snapshot_diffs_against_itself(self, capsys):
        code, out = run_cli(
            capsys, "bench-diff", "benchmarks/BENCH_baseline.json",
            "benchmarks/BENCH_baseline.json", "--all",
        )
        assert code == 0
        assert "pagerank_rmat12" in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["bench-diff", str(tmp_path / "a.json"), str(tmp_path / "b.json")])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_unrecognized_document_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        code = main(["bench-diff", str(bad), str(bad)])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestBenchCheckUpdate:
    def test_update_preserves_tuned_tolerance(self, tmp_path, capsys):
        """`--update` must not silently reset a tuned gate to default."""
        from repro.obs import bench

        snap = tmp_path / "BENCH_tuned.json"
        bench.save_snapshot(snap, bench.run_suite(["cc_er"]), tolerance=0.25)
        code, out = run_cli(capsys, "bench-check", "--snapshot", str(snap), "--update")
        assert code == 0
        assert bench.load_snapshot(snap)["tolerance"] == 0.25
        assert "tolerance 0.25" in out

    def test_update_explicit_tolerance_wins(self, tmp_path, capsys):
        from repro.obs import bench

        snap = tmp_path / "BENCH_tuned.json"
        bench.save_snapshot(snap, bench.run_suite(["cc_er"]), tolerance=0.25)
        code, _ = run_cli(
            capsys, "bench-check", "--snapshot", str(snap), "--update",
            "--tolerance", "0.05",
        )
        assert code == 0
        assert bench.load_snapshot(snap)["tolerance"] == 0.05


class TestTelemetryCli:
    def _stream(self, tmp_path, capsys, *extra):
        stream = tmp_path / "run.jsonl"
        code, out = run_cli(
            capsys, "run", "--graph", "delaunay_n13", "--algorithm",
            "pagerank", "--telemetry-out", str(stream),
            "--telemetry-interval", "0", *extra,
        )
        assert code == 0
        assert "telemetry  :" in out and str(stream) in out
        return stream, out

    def test_run_streams_and_monitor_once_passes(self, tmp_path, capsys):
        stream, _ = self._stream(tmp_path, capsys)
        code, out = run_cli(
            capsys, "monitor", str(stream), "--once", "--fail-on-incident",
        )
        assert code == 0
        assert "run: pagerank" in out
        assert "run ended: converged" in out
        assert "incidents: none" in out

    def test_run_truncates_a_stale_stream(self, tmp_path, capsys):
        stream = tmp_path / "run.jsonl"
        stream.write_text('{"schema": 1, "kind": "run_start"}\n' * 5)
        self._stream(tmp_path, capsys)
        records = [
            json.loads(l) for l in stream.read_text().splitlines()
        ]
        assert sum(r["kind"] == "run_start" for r in records) == 1

    def test_flight_recorder_summary_line(self, tmp_path, capsys):
        _, out = self._stream(
            tmp_path, capsys, "--flight-recorder", "--telemetry-budget",
            str(16 * 512),
        )
        assert "flight recorder" in out and "dropped" in out

    def test_monitor_expect_workers_fails_serial_run(self, tmp_path, capsys):
        stream, _ = self._stream(tmp_path, capsys)
        code = main(["monitor", str(stream), "--once", "--expect-workers", "2"])
        assert code == 1
        assert "expected heartbeats from 2 workers" in capsys.readouterr().err

    def test_monitor_missing_stream_exits_2(self, tmp_path, capsys):
        code = main(["monitor", str(tmp_path / "nope.jsonl"), "--once"])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_monitor_rejects_schema_mismatch(self, tmp_path, capsys):
        stream = tmp_path / "bad.jsonl"
        stream.write_text('{"schema": 99, "kind": "run_start"}\n')
        code = main(["monitor", str(stream), "--once"])
        assert code == 2
        assert "schema mismatch" in capsys.readouterr().err

    def test_live_monitor_tails_until_run_end(self, tmp_path, capsys):
        stream, _ = self._stream(tmp_path, capsys)
        code, out = run_cli(
            capsys, "monitor", str(stream), "--poll", "0.01",
            "--fail-on-incident",
        )
        assert code == 0
        assert "run ended: converged" in out

    def test_telemetry_report_folds_and_diffs(self, tmp_path, capsys):
        stream, _ = self._stream(tmp_path, capsys)
        report = tmp_path / "report.json"
        code, out = run_cli(
            capsys, "telemetry-report", str(stream), "--out", str(report),
        )
        assert code == 0
        assert "telemetry report: pagerank" in out
        doc = json.loads(report.read_text())
        assert doc["telemetry_version"] == 1
        assert doc["converged"] is True
        code, out = run_cli(
            capsys, "bench-diff", str(report), str(report), "--all",
        )
        assert code == 0
        assert "telemetry:pagerank/threads" in out

    def test_telemetry_report_missing_stream_exits_2(self, tmp_path, capsys):
        code = main(["telemetry-report", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "not found" in capsys.readouterr().err
