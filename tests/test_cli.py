"""Command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, load_graph, main
from repro.graph.generators import erdos_renyi
from repro.graph.io import save_edgelist_txt, save_npz


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_datasets_lists_all(capsys):
    code, out = run_cli(capsys, "datasets")
    assert code == 0
    for name in ("kron_g500-logn21", "ak2010", "orkut"):
        assert name in out
    assert "out-of-memory" in out and "in-memory" in out


def test_info_shows_machine(capsys):
    code, out = run_cli(capsys, "info")
    assert code == 0
    assert "K20c" in out
    assert "PCIe" in out


def test_run_on_dataset(capsys):
    code, out = run_cli(
        capsys, "run", "--graph", "delaunay_n13", "--algorithm", "bfs", "--source", "3"
    )
    assert code == 0
    assert "converged=True" in out
    assert "sim time" in out


def test_run_unoptimized_flag(capsys):
    code, out = run_cli(
        capsys, "run", "--graph", "delaunay_n13", "--algorithm", "cc", "--unoptimized"
    )
    assert code == 0
    assert "streaming" in out


def test_run_on_file(tmp_path, capsys):
    g = erdos_renyi(50, 200, seed=1)
    path = tmp_path / "g.txt"
    save_edgelist_txt(g, path)
    code, out = run_cli(capsys, "run", "--graph", str(path), "--algorithm", "pagerank")
    assert code == 0
    assert "pagerank" in out


def test_load_graph_npz(tmp_path):
    g = erdos_renyi(30, 90, seed=2)
    path = tmp_path / "g.npz"
    save_npz(g, path)
    h = load_graph(str(path))
    assert h.num_edges == 90


def test_unknown_graph_errors():
    with pytest.raises(SystemExit):
        load_graph("definitely-not-a-graph")


def test_compare_runs_all_frameworks(capsys):
    code, out = run_cli(
        capsys, "compare", "--graph", "delaunay_n13", "--algorithm", "bfs"
    )
    assert code == 0
    for fw in ("GraphReduce", "GraphChi", "X-Stream", "CuSha", "MapGraph", "Totem"):
        assert fw in out


def test_kcore_via_cli(capsys):
    code, out = run_cli(
        capsys, "run", "--graph", "delaunay_n13", "--algorithm", "kcore", "--k", "3"
    )
    assert code == 0


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


class TestTrace:
    def test_writes_consistent_chrome_trace(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        code, out = run_cli(
            capsys,
            "trace",
            "--algo",
            "pagerank",
            "--graph",
            "delaunay_n13",
            "--out",
            str(out_path),
        )
        assert code == 0
        assert "chrome://tracing" in out
        assert "memcpy" in out and "gather_map" in out
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        cats = {ev.get("cat") for ev in doc["traceEvents"]}
        assert {"iteration", "phase", "h2d", "kernel"} <= cats

    def test_unoptimized_trace(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        code, out = run_cli(
            capsys,
            "trace",
            "--algo",
            "bfs",
            "--graph",
            "delaunay_n13",
            "--unoptimized",
            "--out",
            str(out_path),
        )
        assert code == 0
        assert out_path.exists()


class TestBenchCheck:
    def test_committed_snapshot_passes(self, capsys):
        code, out = run_cli(capsys, "bench-check")
        assert code == 0
        assert "ok: no phase regressed" in out
        assert "pagerank_rmat12" in out

    def test_update_then_check_round_trip(self, tmp_path, capsys):
        snap = tmp_path / "BENCH_test.json"
        code, out = run_cli(capsys, "bench-check", "--snapshot", str(snap), "--update")
        assert code == 0
        assert "wrote" in out
        code, out = run_cli(capsys, "bench-check", "--snapshot", str(snap))
        assert code == 0

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        """Halving every committed timing makes the fresh run look 2x
        slower -- the gate must trip (the ISSUE acceptance criterion)."""
        from repro.obs import bench

        doc = bench.load_snapshot("benchmarks/BENCH_baseline.json")
        crippled = {
            name: {
                **m,
                "sim_time": m["sim_time"] / 2,
                "phases": {ph: t / 2 for ph, t in m["phases"].items()},
            }
            for name, m in doc["benchmarks"].items()
        }
        snap = tmp_path / "BENCH_crippled.json"
        bench.save_snapshot(snap, crippled, tolerance=doc["tolerance"])
        code = main(["bench-check", "--snapshot", str(snap)])
        err = capsys.readouterr().err
        assert code == 1
        assert "regression(s)" in err
        assert "2.00x" in err

    def test_missing_snapshot_exits_2(self, tmp_path, capsys):
        code = main(["bench-check", "--snapshot", str(tmp_path / "nope.json")])
        err = capsys.readouterr().err
        assert code == 2
        assert "not found" in err
