"""Telemetry stream consumers: parsing, tailing, folding, diffing.

The stream reader must survive what a live writer does to a file --
torn final lines, records arriving between polls -- and must refuse
streams from an incompatible schema instead of misreading them.
"""

import json
import threading

import pytest

from repro.obs.bench import metric_table
from repro.obs.monitor import (
    MonitorState,
    fold_stream,
    follow,
    parse_record,
    read_records,
    render,
    report_text,
)
from repro.obs.telemetry import SCHEMA_VERSION


def _rec(kind, **fields):
    fields.setdefault("schema", SCHEMA_VERSION)
    fields["kind"] = kind
    return fields


def _stream():
    return [
        _rec("run_start", algorithm="pagerank", backend="processes",
             workers=2, pid=4242, wall_time=10.0),
        _rec("snapshot", iteration=0, frontier=8192, sim_time=0.001,
             iterations_per_sec=100.0, wall_time=10.5,
             sources={"plan_cache": {"hits": 3, "misses": 1}},
             heartbeats={
                 "main-loop": {"age": 0.0, "busy": True, "kind": "loop",
                               "beats": 1},
                 "worker-0": {"age": 0.1, "busy": False, "kind": "worker",
                              "beats": 4},
                 "worker-1": {"age": 0.2, "busy": False, "kind": "worker",
                              "beats": 4},
             }),
        _rec("snapshot", iteration=5, frontier=4096, sim_time=0.002,
             iterations_per_sec=200.0, wall_time=11.0,
             counters={"runtime.iterations": 6},
             sources={"plan_cache": {"hits": 3, "misses": 1}},
             heartbeats={
                 "worker-0": {"age": 0.1, "busy": False, "kind": "worker",
                              "beats": 9},
                 "worker-1": {"age": 0.2, "busy": True, "kind": "worker",
                              "beats": 9},
             }),
        _rec("run_end", iterations=6, converged=True, sim_time=0.002,
             incidents=0, wall_time=11.5),
    ]


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def test_parse_record_tolerates_blank_and_torn_lines():
    assert parse_record("") is None
    assert parse_record("   \n") is None
    assert parse_record('{"schema": 1, "kind": "snaps') is None  # torn tail
    assert parse_record('"just a string"') is None


def test_parse_record_rejects_schema_mismatch():
    line = json.dumps({"schema": SCHEMA_VERSION + 1, "kind": "snapshot"})
    with pytest.raises(ValueError, match="schema mismatch"):
        parse_record(line)


def test_read_records_skips_torn_tail(tmp_path):
    path = tmp_path / "s.jsonl"
    lines = [json.dumps(r) for r in _stream()]
    path.write_text("\n".join(lines) + '\n{"schema": 1, "kind": "sn')
    records = read_records(str(path))
    assert [r["kind"] for r in records] == [
        "run_start", "snapshot", "snapshot", "run_end",
    ]


def test_follow_tails_a_growing_file(tmp_path):
    path = tmp_path / "s.jsonl"
    path.write_text("")
    stream = _stream()

    def writer():
        with open(path, "a", encoding="utf-8") as fh:
            for r in stream:
                fh.write(json.dumps(r) + "\n")
                fh.flush()

    t = threading.Thread(target=writer)
    t.start()
    got = list(follow(str(path), poll=0.01))  # returns at run_end
    t.join()
    assert [r["kind"] for r in got] == [r["kind"] for r in stream]


def test_follow_stop_callback_ends_the_tail(tmp_path):
    path = tmp_path / "s.jsonl"
    path.write_text(json.dumps(_stream()[0]) + "\n")  # no run_end ever
    polls = []

    def stop():
        polls.append(1)
        return len(polls) >= 2

    got = list(follow(str(path), poll=0.01, stop=stop))
    assert [r["kind"] for r in got] == ["run_start"]


# ----------------------------------------------------------------------
# MonitorState health expectations
# ----------------------------------------------------------------------
def test_state_tracks_latest_view_and_workers():
    state = MonitorState()
    for r in _stream():
        state.ingest(r)
    assert state.records == 4 and state.snapshots == 2
    assert state.last_snapshot["iteration"] == 5
    assert sorted(state.workers()) == ["worker-0", "worker-1"]
    assert state.problems(expect_workers=2, fail_on_incident=True) == []


def test_problems_flag_missing_workers_and_incidents():
    state = MonitorState()
    assert state.problems() == ["no telemetry records seen"]
    for r in _stream():
        state.ingest(r)
    [problem] = state.problems(expect_workers=4)
    assert "expected heartbeats from 4 workers, saw 2" in problem
    state.ingest(_rec("incident", incident_kind="stall",
                      component="worker-1", details="no heartbeat"))
    [problem] = state.problems(fail_on_incident=True)
    assert "incidents on the stream" in problem
    # 'recovered' incidents are informational, not failures.
    healthy = MonitorState()
    for r in _stream():
        healthy.ingest(r)
    healthy.ingest(_rec("incident", incident_kind="recovered",
                        component="worker-1"))
    assert healthy.problems(fail_on_incident=True) == []


def test_render_shows_the_live_view():
    state = MonitorState()
    for r in _stream()[:-1]:
        state.ingest(r)
    view = render(state)
    assert "run: pagerank" in view and "backend=processes" in view
    assert "iteration 5" in view and "frontier 4096" in view
    assert "plan-cache hit 0.75" in view
    assert "worker-1" in view and "busy" in view
    assert "incidents: none" in view
    state.ingest(_stream()[-1])
    assert "run ended: converged after 6 iterations" in render(state)


# ----------------------------------------------------------------------
# fold_stream -> report -> bench-diff integration
# ----------------------------------------------------------------------
def test_fold_stream_builds_diffable_report():
    doc = fold_stream(_stream())
    assert doc["telemetry_version"] == 1
    assert doc["run"] == {
        "algorithm": "pagerank", "backend": "processes", "workers": 2,
    }
    assert doc["records"] == 4 and doc["snapshots"] == 2
    assert doc["iterations"] == 6 and doc["converged"] is True
    assert doc["frontier_peak"] == 8192
    assert doc["wall_seconds"] == pytest.approx(1.5)
    assert doc["iterations_per_sec_mean"] == pytest.approx(150.0)
    assert doc["incidents"] == 0
    assert doc["counters"] == {"runtime.iterations": 6}
    text = report_text(doc)
    assert "pagerank" in text and "iterations 6" in text


def test_metric_table_reads_telemetry_reports():
    table = metric_table(fold_stream(_stream()))
    [(name, row)] = table.items()
    assert name == "telemetry:pagerank/processes"
    assert row["iterations"] == 6.0
    assert row["frontier_peak"] == 8192.0
    assert row["incidents"] == 0.0
    assert row["wall_seconds_stream"] == pytest.approx(1.5)
    assert row["counter:runtime.iterations"] == 6.0


def test_metric_table_rejects_future_telemetry_version():
    doc = fold_stream(_stream())
    doc["telemetry_version"] = 99
    with pytest.raises(ValueError, match="telemetry report version"):
        metric_table(doc)


def test_metric_table_rejects_future_profile_version():
    with pytest.raises(ValueError, match="profile version"):
        metric_table({"profile_version": 99, "algo": "x", "graph": "y"})
