"""Span recorder, metrics registry, and runtime integration."""

import numpy as np
import pytest

from repro.algorithms import BFS, PageRank
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.graph.generators import erdos_renyi, rmat
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.span import NULL_OBSERVER, NoopObserver, Observer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestObserver:
    def test_nesting_by_dynamic_scope(self):
        clock = FakeClock()
        obs = Observer(clock=clock)
        with obs.span("outer") as outer:
            clock.now = 1.0
            with obs.span("inner", category="phase", shards=3) as inner:
                clock.now = 2.5
        assert obs.roots == [outer]
        assert outer.children == [inner]
        assert inner.start == 1.0 and inner.end == 2.5
        assert inner.duration == 1.5
        assert outer.duration == 2.5
        assert inner.attrs["shards"] == 3

    def test_set_updates_attrs(self):
        obs = Observer()
        with obs.span("s") as sp:
            sp.set(bytes=10).set(bytes=20, extra=1)
        assert sp.attrs == {"bytes": 20, "extra": 1}

    def test_event_is_zero_duration_child(self):
        clock = FakeClock()
        obs = Observer(clock=clock)
        with obs.span("outer") as outer:
            clock.now = 3.0
            ev = obs.event("tick", category="fusion", mode="bsp")
        assert ev in outer.children
        assert ev.start == ev.end == 3.0
        assert ev.attrs["mode"] == "bsp"

    def test_find_filters_category_and_name(self):
        obs = Observer()
        with obs.span("a", category="iteration"):
            with obs.span("b", category="phase"):
                pass
            with obs.span("c", category="phase"):
                pass
        assert [s.name for s in obs.find(category="phase")] == ["b", "c"]
        assert [s.name for s in obs.find(name="a")] == ["a"]

    def test_exception_unwinding_closes_spans(self):
        clock = FakeClock()
        obs = Observer(clock=clock)
        with pytest.raises(RuntimeError):
            with obs.span("outer"):
                clock.now = 1.0
                with obs.span("inner"):
                    raise RuntimeError("boom")
        (outer,) = obs.roots
        assert outer.end == 1.0
        assert outer.children[0].end == 1.0
        assert obs.current is None

    def test_metrics_pass_through(self):
        obs = Observer()
        obs.add("bytes", 100)
        obs.add("bytes", 50)
        obs.observe("size", 7)
        assert obs.metrics.value("bytes") == 150
        assert obs.metrics.histogram("size").count == 1


class TestNoop:
    def test_shared_singleton_records_nothing(self):
        with NULL_OBSERVER.span("x", category="iteration", index=1) as sp:
            sp.set(bytes=10)
        NULL_OBSERVER.add("c", 5)
        NULL_OBSERVER.observe("h", 5)
        NULL_OBSERVER.event("e")
        assert list(NULL_OBSERVER.iter_spans()) == []
        assert NULL_OBSERVER.metrics.counters == {}
        assert NULL_OBSERVER.metrics.histograms == {}
        assert not NULL_OBSERVER.enabled

    def test_span_context_is_reused(self):
        a = NoopObserver()
        assert a.span("x") is a.span("y")


class TestMetrics:
    def test_histogram_summary(self):
        h = Histogram("h")
        for v in (1, 2, 3, 1000):
            h.observe(v)
        assert h.count == 4
        assert h.min == 1 and h.max == 1000
        assert h.mean == pytest.approx(1006 / 4)
        d = h.to_dict()
        assert d["count"] == 4
        # log2 buckets: 1 -> bucket 0, 2 -> 1, 3 -> 2, 1000 -> 10
        assert d["buckets"] == {"0": 1, "1": 1, "2": 1, "10": 1}

    def test_empty_histogram(self):
        import json

        d = Histogram("h").to_dict()
        assert d == {"count": 0, "min": None, "max": None}
        # +/-inf never leaks into the JSON document.
        assert json.loads(json.dumps(d)) == d
        rt = Histogram.from_dict("h", json.loads(json.dumps(d)))
        assert rt.count == 0 and rt.min == float("inf") and rt.max == float("-inf")

    def test_histogram_merge_matches_combined_stream(self):
        a, b, both = Histogram("h"), Histogram("h"), Histogram("h")
        for v in (1, 5, 9):
            a.observe(v)
            both.observe(v)
        for v in (2, 300):
            b.observe(v)
            both.observe(v)
        a.merge(b)
        assert a.to_dict() == both.to_dict()
        # Merging an empty histogram is a no-op either way around.
        assert Histogram("h").merge(a).to_dict() == both.to_dict()
        assert a.merge(Histogram("h")).to_dict() == both.to_dict()

    def test_histogram_json_round_trip(self):
        import json

        h = Histogram("h")
        for v in (1, 2, 3, 1000):
            h.observe(v)
        rt = Histogram.from_dict("h", json.loads(json.dumps(h.to_dict())))
        assert rt.to_dict() == h.to_dict()

    def test_quantiles_track_the_distribution(self):
        h = Histogram("h")
        for v in range(1, 1001):
            h.observe(v)
        p = h.percentiles()
        assert set(p) == {"p50", "p90", "p99"}
        # Log2 buckets bound the error by the bucket width (2x).
        assert 250 <= p["p50"] <= 1000
        assert p["p50"] <= p["p90"] <= p["p99"] <= 1000
        assert h.quantile(0.0) == 1
        assert h.quantile(1.0) == 1000

    def test_quantiles_of_a_single_value(self):
        h = Histogram("h")
        h.observe(42)
        assert h.percentiles() == {"p50": 42, "p90": 42, "p99": 42}

    def test_quantiles_empty_and_merge_exact(self):
        import json

        assert Histogram("h").percentiles() == {}
        a, b, both = Histogram("h"), Histogram("h"), Histogram("h")
        for v in (1, 5, 9, 300):
            a.observe(v)
            both.observe(v)
        for v in (2, 70):
            b.observe(v)
            both.observe(v)
        a.merge(b)
        assert a.percentiles() == both.percentiles()
        # Derived from buckets/min/max only: survives the JSON trip.
        rt = Histogram.from_dict("h", json.loads(json.dumps(both.to_dict())))
        assert rt.percentiles() == both.percentiles()

    def test_to_dict_carries_percentiles_only_when_observed(self):
        h = Histogram("h")
        assert "percentiles" not in h.to_dict()
        h.observe(3)
        assert h.to_dict()["percentiles"] == {"p50": 3, "p90": 3, "p99": 3}

    def test_snapshot_is_schema_versioned_and_sorted(self):
        from repro.obs.metrics import METRICS_SCHEMA_VERSION

        m = MetricsRegistry()
        m.add("zeta")
        m.add("alpha")
        m.observe("mid", 4)
        snap = m.snapshot()
        assert snap["schema"] == METRICS_SCHEMA_VERSION
        assert list(snap["counters"]) == ["alpha", "zeta"]
        # A pre-schema document is accepted; a future one is refused.
        legacy = {k: v for k, v in snap.items() if k != "schema"}
        assert MetricsRegistry.from_snapshot(legacy).snapshot() == snap
        with pytest.raises(ValueError, match="schema mismatch"):
            MetricsRegistry.from_snapshot({**snap, "schema": 99})

    def test_registry_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.add("bytes", 100)
        a.observe("size", 4)
        b.add("bytes", 50)
        b.add("copies", 2)
        b.observe("size", 9)
        b.observe("other", 1)
        a.merge(b)
        assert a.value("bytes") == 150
        assert a.value("copies") == 2
        assert a.histogram("size").count == 2
        assert a.histogram("size").max == 9
        assert a.histogram("other").count == 1

    def test_registry_snapshot_round_trip(self):
        import json

        m = MetricsRegistry()
        m.add("a", 3)
        m.observe("b", 7)
        m.histogram("empty")  # never observed
        rt = MetricsRegistry.from_snapshot(json.loads(json.dumps(m.snapshot())))
        assert rt.snapshot() == m.snapshot()

    def test_registry_creates_on_first_use(self):
        m = MetricsRegistry()
        m.add("a", 2)
        m.add("a")
        m.observe("b", 5)
        snap = m.snapshot()
        assert snap["counters"]["a"]["value"] == 3
        assert snap["histograms"]["b"]["count"] == 1
        assert m.value("missing", default=-1) == -1


class TestRuntimeIntegration:
    @pytest.fixture(scope="class")
    def result(self):
        g = rmat(10, 8_000, seed=3)
        return GraphReduce(g, options=GraphReduceOptions(cache_policy="never")).run(
            PageRank(tolerance=1e-3)
        )

    def test_run_span_covers_sim_time(self, result):
        (run,) = result.observer.roots
        assert run.category == "run"
        assert run.end == pytest.approx(result.sim_time)
        assert run.attrs["iterations"] == result.iterations

    def test_one_span_per_iteration(self, result):
        iters = list(result.observer.find(category="iteration"))
        assert len(iters) == result.iterations
        assert [s.attrs["index"] for s in iters] == list(range(result.iterations))
        # Frontier sizes recorded on the spans match the history.
        assert [s.attrs["frontier"] for s in iters] == result.frontier_history[
            : result.iterations
        ]

    def test_phase_spans_nest_in_iterations(self, result):
        for it in result.observer.find(category="iteration"):
            names = [c.name for c in it.children if c.category == "phase"]
            assert names[-1] == "frontier"
            assert "gather_map" in names

    def test_shard_spans_match_processed_count(self, result):
        shards = list(result.observer.find(category="shard"))
        assert len(shards) == result.stats.shards_processed

    def test_counters_match_movement_stats(self, result):
        m = result.observer.metrics
        assert m.value("movement.h2d.bytes") == result.stats.h2d_bytes
        assert m.value("movement.d2h.bytes") == result.stats.d2h_bytes
        assert m.value("movement.kernel.launches") == result.stats.kernel_launches
        assert m.value("movement.shards.processed") == result.stats.shards_processed
        assert m.value("movement.shards.skipped") == result.stats.shards_skipped
        assert m.value("runtime.iterations") == result.iterations

    def test_frontier_histogram(self, result):
        h = result.observer.metrics.histogram("frontier.size")
        # advance() runs once per completed iteration
        assert h.count == result.iterations

    def test_fusion_plan_event(self, result):
        (ev,) = result.observer.find(category="fusion")
        assert ev.attrs["mode"] == "bsp"
        assert "gather_map" in ev.attrs["groups"]
        assert result.observer.metrics.value("fusion.groups") == len(ev.attrs["groups"])

    def test_observe_off_returns_none_and_same_answers(self):
        g = erdos_renyi(300, 1_500, seed=5)
        on = GraphReduce(g).run(BFS(source=0))
        off = GraphReduce(g, options=GraphReduceOptions(observe=False)).run(BFS(source=0))
        assert off.observer is None
        assert np.array_equal(on.vertex_values, off.vertex_values)
        assert on.sim_time == pytest.approx(off.sim_time)


class TestAdaptiveIntegration:
    def test_scheduler_spans_and_counters(self):
        from repro.core.scheduler import AdaptiveEngine

        g = erdos_renyi(400, 2_000, seed=9)
        r = AdaptiveEngine(g).run(BFS(source=0))
        assert r.observer is not None
        (run,) = r.observer.roots
        assert run.attrs["iterations"] == r.iterations
        iters = list(r.observer.find(category="iteration"))
        assert [s.attrs["placement"] for s in iters] == r.placement
        m = r.observer.metrics
        assert m.value("adaptive.gpu_iterations") == r.placement.count("gpu")
        assert m.value("adaptive.cpu_iterations") == r.placement.count("cpu")
        assert m.value("adaptive.switches") == r.switches
        assert run.end == pytest.approx(r.sim_time)

    def test_scheduler_observe_off(self):
        from repro.core.scheduler import AdaptiveEngine

        g = erdos_renyi(100, 400, seed=2)
        r = AdaptiveEngine(g, observe=False).run(BFS(source=0))
        assert r.observer is None
