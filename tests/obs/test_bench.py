"""Snapshot compare logic and the committed baseline's honesty."""

import json
from pathlib import Path

import pytest

from repro.obs import bench
from repro.obs.bench import (
    Regression,
    compare,
    load_snapshot,
    run_suite,
    save_snapshot,
)

REPO = Path(__file__).resolve().parents[2]
SNAPSHOT = REPO / "benchmarks" / "BENCH_baseline.json"


def meas(sim=1.0, phases=None):
    return {
        "sim_time": sim,
        "memcpy_time": sim / 2,
        "kernel_time": sim / 4,
        "iterations": 10,
        "phases": dict(phases or {"gather_map": sim / 3}),
    }


class TestCompare:
    def test_identical_is_clean(self):
        base = {"a": meas(), "b": meas(2.0)}
        assert compare(base, base) == []

    def test_2x_regression_detected(self):
        base = {"a": meas(1.0)}
        fresh = {"a": meas(2.0)}
        regs = compare(base, fresh)
        assert regs
        metrics = {r.metric for r in regs}
        assert "sim_time" in metrics and "phase:gather_map" in metrics
        r = next(r for r in regs if r.metric == "sim_time")
        assert r.ratio == pytest.approx(2.0)
        assert "2.00x" in str(r)

    def test_tolerance_respected(self):
        base = {"a": meas(1.0)}
        within = {"a": meas(1.09)}
        beyond = {"a": meas(1.11)}
        assert compare(base, within, tolerance=0.10) == []
        assert compare(base, beyond, tolerance=0.10)
        assert compare(base, beyond, tolerance=0.20) == []

    def test_speedup_is_not_a_regression(self):
        assert compare({"a": meas(1.0)}, {"a": meas(0.1)}) == []

    def test_noise_floor_ignores_tiny_baselines(self):
        base = {"a": meas(1e-9)}
        fresh = {"a": meas(1e-6)}
        assert compare(base, fresh) == []
        assert compare(base, fresh, min_seconds=0.0)

    def test_benchmark_only_on_one_side_skipped(self):
        assert compare({"a": meas()}, {"b": meas(9.0)}) == []
        assert compare({"a": meas()}, {"a": meas(), "b": meas(9.0)}) == []

    def test_phase_missing_from_fresh_skipped(self):
        base = {"a": meas(1.0, phases={"gone": 0.5})}
        fresh = {"a": meas(1.0, phases={"new": 0.5})}
        assert [r.metric for r in compare(base, fresh)] == []


class TestSnapshotIO:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "snap.json"
        save_snapshot(path, {"a": meas()}, tolerance=0.25)
        doc = load_snapshot(path)
        assert doc["tolerance"] == 0.25
        assert doc["benchmarks"]["a"]["sim_time"] == 1.0

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"version": 99, "benchmarks": {}}))
        with pytest.raises(ValueError, match="version"):
            load_snapshot(path)

    def test_unknown_benchmark_name_raises(self):
        with pytest.raises(KeyError, match="nope"):
            run_suite(names=["nope"])


class TestCommittedBaseline:
    """The committed snapshot must match a fresh run: the simulator is
    deterministic, so any drift means the snapshot is stale."""

    def test_snapshot_exists_and_loads(self):
        doc = load_snapshot(SNAPSHOT)
        assert set(doc["benchmarks"]) == set(bench._suite_cases())

    def test_fresh_run_matches_snapshot(self):
        doc = load_snapshot(SNAPSHOT)
        fresh = run_suite(names=sorted(doc["benchmarks"]))
        assert compare(doc["benchmarks"], fresh, tolerance=doc["tolerance"]) == []

    def test_injected_regression_fails(self):
        """Halving baseline timings == doubling fresh ones: exit path."""
        doc = load_snapshot(SNAPSHOT)
        crippled = {
            name: {
                **m,
                "sim_time": m["sim_time"] / 2,
                "phases": {ph: t / 2 for ph, t in m["phases"].items()},
            }
            for name, m in doc["benchmarks"].items()
        }
        fresh = run_suite(names=sorted(doc["benchmarks"]))
        regs = compare(crippled, fresh, tolerance=doc["tolerance"])
        assert regs
        assert all(isinstance(r, Regression) for r in regs)


def snap_doc(sim=1.0, name="a"):
    return {"version": 1, "tolerance": 0.10, "benchmarks": {name: meas(sim)}}


class TestDiffDocuments:
    def test_identical_snapshots_clean(self):
        doc = snap_doc()
        rows, regs = bench.diff_documents(doc, doc)
        assert rows and regs == []
        assert all(r.delta == 0 for r in rows)

    def test_degraded_snapshot_flags_regressions(self):
        """ISSUE acceptance: a deliberately degraded snapshot regresses."""
        rows, regs = bench.diff_documents(snap_doc(1.0), snap_doc(1.5))
        metrics = {r.metric for r in regs}
        assert {"sim_time", "memcpy_time", "kernel_time", "phase:gather_map"} <= metrics
        r = next(r for r in regs if r.metric == "sim_time")
        assert r.ratio == pytest.approx(1.5)
        assert "1.50x" in str(r)

    def test_improvement_is_not_a_regression(self):
        rows, regs = bench.diff_documents(snap_doc(1.0), snap_doc(0.5))
        assert any(r.delta != 0 for r in rows)
        assert regs == []

    def test_tolerance_respected(self):
        assert bench.diff_documents(snap_doc(1.0), snap_doc(1.05), tolerance=0.10)[1] == []
        assert bench.diff_documents(snap_doc(1.0), snap_doc(1.05), tolerance=0.01)[1]

    def test_one_sided_cases_skipped(self):
        rows, regs = bench.diff_documents(snap_doc(1.0, name="a"), snap_doc(9.0, name="b"))
        assert rows == [] and regs == []

    def test_counters_never_regress_alone(self):
        a = {"profile_version": 1, "algo": "pr", "graph": "g", "sim_time": 1.0,
             "counters": {"movement.h2d.copies": 10}}
        b = {"profile_version": 1, "algo": "pr", "graph": "g", "sim_time": 1.0,
             "counters": {"movement.h2d.copies": 999}}
        rows, regs = bench.diff_documents(a, b)
        assert any(r.metric == "counter:movement.h2d.copies" for r in rows)
        assert regs == []

    def test_profile_vs_bench_document_mix(self):
        prof = {"profile_version": 1, "algo": "pr", "graph": "g",
                "sim_time": 2.0, "memcpy_time": 1.0}
        bench_doc = {"version": 1, "benchmarks": {"pr/g": {"sim_time": 1.0,
                     "memcpy_time": 1.0, "iterations": 3, "phases": {}}}}
        rows, regs = bench.diff_documents(bench_doc, prof)
        assert any(r.metric == "sim_time" and r.ratio == 2.0 for r in rows)
        assert any(r.metric == "sim_time" for r in regs)

    def test_unrecognized_document_raises(self):
        with pytest.raises(ValueError, match="unrecognized"):
            bench.metric_table({"whatever": 1})
