"""Snapshot compare logic and the committed baseline's honesty."""

import json
from pathlib import Path

import pytest

from repro.obs import bench
from repro.obs.bench import (
    Regression,
    compare,
    load_snapshot,
    run_suite,
    save_snapshot,
)

REPO = Path(__file__).resolve().parents[2]
SNAPSHOT = REPO / "benchmarks" / "BENCH_baseline.json"


def meas(sim=1.0, phases=None):
    return {
        "sim_time": sim,
        "memcpy_time": sim / 2,
        "kernel_time": sim / 4,
        "iterations": 10,
        "phases": dict(phases or {"gather_map": sim / 3}),
    }


class TestCompare:
    def test_identical_is_clean(self):
        base = {"a": meas(), "b": meas(2.0)}
        assert compare(base, base) == []

    def test_2x_regression_detected(self):
        base = {"a": meas(1.0)}
        fresh = {"a": meas(2.0)}
        regs = compare(base, fresh)
        assert regs
        metrics = {r.metric for r in regs}
        assert "sim_time" in metrics and "phase:gather_map" in metrics
        r = next(r for r in regs if r.metric == "sim_time")
        assert r.ratio == pytest.approx(2.0)
        assert "2.00x" in str(r)

    def test_tolerance_respected(self):
        base = {"a": meas(1.0)}
        within = {"a": meas(1.09)}
        beyond = {"a": meas(1.11)}
        assert compare(base, within, tolerance=0.10) == []
        assert compare(base, beyond, tolerance=0.10)
        assert compare(base, beyond, tolerance=0.20) == []

    def test_speedup_is_not_a_regression(self):
        assert compare({"a": meas(1.0)}, {"a": meas(0.1)}) == []

    def test_noise_floor_ignores_tiny_baselines(self):
        base = {"a": meas(1e-9)}
        fresh = {"a": meas(1e-6)}
        assert compare(base, fresh) == []
        assert compare(base, fresh, min_seconds=0.0)

    def test_benchmark_only_on_one_side_skipped(self):
        assert compare({"a": meas()}, {"b": meas(9.0)}) == []
        assert compare({"a": meas()}, {"a": meas(), "b": meas(9.0)}) == []

    def test_phase_missing_from_fresh_skipped(self):
        base = {"a": meas(1.0, phases={"gone": 0.5})}
        fresh = {"a": meas(1.0, phases={"new": 0.5})}
        assert [r.metric for r in compare(base, fresh)] == []


class TestSnapshotIO:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "snap.json"
        save_snapshot(path, {"a": meas()}, tolerance=0.25)
        doc = load_snapshot(path)
        assert doc["tolerance"] == 0.25
        assert doc["benchmarks"]["a"]["sim_time"] == 1.0

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"version": 99, "benchmarks": {}}))
        with pytest.raises(ValueError, match="version"):
            load_snapshot(path)

    def test_unknown_benchmark_name_raises(self):
        with pytest.raises(KeyError, match="nope"):
            run_suite(names=["nope"])


class TestCommittedBaseline:
    """The committed snapshot must match a fresh run: the simulator is
    deterministic, so any drift means the snapshot is stale."""

    def test_snapshot_exists_and_loads(self):
        doc = load_snapshot(SNAPSHOT)
        assert set(doc["benchmarks"]) == set(bench._suite_cases())

    def test_fresh_run_matches_snapshot(self):
        doc = load_snapshot(SNAPSHOT)
        fresh = run_suite(names=sorted(doc["benchmarks"]))
        assert compare(doc["benchmarks"], fresh, tolerance=doc["tolerance"]) == []

    def test_injected_regression_fails(self):
        """Halving baseline timings == doubling fresh ones: exit path."""
        doc = load_snapshot(SNAPSHOT)
        crippled = {
            name: {
                **m,
                "sim_time": m["sim_time"] / 2,
                "phases": {ph: t / 2 for ph, t in m["phases"].items()},
            }
            for name, m in doc["benchmarks"].items()
        }
        fresh = run_suite(names=sorted(doc["benchmarks"]))
        regs = compare(crippled, fresh, tolerance=doc["tolerance"])
        assert regs
        assert all(isinstance(r, Regression) for r in regs)
