"""The bottleneck-attribution profiler and cost-model validation.

Covers the ISSUE acceptance criteria directly: per-engine busy time
reconciles with the Chrome trace export within 1%, the Eq. (1)/(2) +
per-op model validation passes under tolerance on the standard bench
suite, and ``diff_documents`` flags a deliberately degraded snapshot.
"""

import json

import pytest

from repro.algorithms import PageRank
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.obs import bench
from repro.obs.attribution import (
    ModelCheck,
    diagnose,
    predict_concurrent_shards,
    validate_cost_model,
)
from repro.obs.export import DEVICE_PID, US, result_to_chrome_trace
from repro.obs.profile import (
    build_profile,
    clip_intervals,
    intersect_intervals,
    merge_intervals,
    total_length,
    write_profile,
)
from repro.graph.generators import rmat


#: Streaming run with real compute-transfer overlap: forcing 8
#: partitions keeps Eq. (2) from collapsing to K=1 on a small graph.
STREAM_OPTS = GraphReduceOptions(cache_policy="never", num_partitions=8)


@pytest.fixture(scope="module")
def graph():
    return rmat(12, 40_000, seed=7)


@pytest.fixture(scope="module")
def result(graph):
    return GraphReduce(graph, options=STREAM_OPTS).run(PageRank(tolerance=1e-3))


@pytest.fixture(scope="module")
def report(result):
    return build_profile(result)


@pytest.fixture(scope="module")
def unopt_result(graph):
    opts = GraphReduceOptions.unoptimized().replace(num_partitions=8)
    return GraphReduce(graph, options=opts).run(PageRank(tolerance=1e-3))


class TestIntervalAlgebra:
    def test_merge_overlapping_and_adjacent(self):
        assert merge_intervals([(3, 4), (0, 1), (1, 2), (3.5, 5)]) == [(0, 2), (3, 5)]

    def test_merge_empty(self):
        assert merge_intervals([]) == []

    def test_intersect(self):
        a = [(0, 2), (3, 5)]
        b = [(1, 4), (4.5, 10)]
        assert intersect_intervals(a, b) == [(1, 2), (3, 4), (4.5, 5)]

    def test_intersect_disjoint(self):
        assert intersect_intervals([(0, 1)], [(2, 3)]) == []

    def test_total_length(self):
        assert total_length([(0, 2), (3, 5)]) == pytest.approx(4.0)

    def test_clip(self):
        assert clip_intervals([(0, 2), (3, 5)], 1, 4) == [(1, 2), (3, 4)]
        assert clip_intervals([(0, 2)], 5, 6) == []


class TestEngineReconciliation:
    """Acceptance criterion: profiler busy time == trace busy time (<1%)."""

    @pytest.mark.parametrize(
        "engine, categories",
        [("h2d", ("h2d",)), ("d2h", ("d2h",)), ("sm", ("kernel",))],
    )
    def test_engine_busy_matches_trace_service_windows(
        self, report, result, engine, categories
    ):
        trace_busy = result.trace.service_busy_span(*categories)
        assert trace_busy > 0
        busy = report.engines[engine].busy_seconds
        assert busy == pytest.approx(trace_busy, rel=0.01)
        # In practice the agreement is exact: the engine timeline and
        # the trace intervals record the same service windows.
        assert busy == pytest.approx(trace_busy, rel=1e-9)

    def test_copy_engine_busy_matches_raw_interval_sums(self, report, result):
        # Copy engines are FIFO at full bandwidth, so the union of their
        # busy windows equals the plain sum of interval durations too.
        assert report.engines["h2d"].busy_seconds == pytest.approx(
            result.trace.total_duration("h2d"), rel=1e-9
        )
        assert report.engines["d2h"].busy_seconds == pytest.approx(
            result.trace.total_duration("d2h"), rel=1e-9
        )

    def test_reconciles_with_chrome_export(self, report, result):
        """Recompute per-engine busy time from the exported document alone."""
        doc = result_to_chrome_trace(result)
        windows = {"h2d": [], "d2h": [], "sm": []}
        for ev in doc["traceEvents"]:
            if ev["ph"] != "X" or ev["pid"] != DEVICE_PID:
                continue
            end = ev["ts"] + ev["dur"]
            if ev["cat"] in ("h2d", "d2h"):
                windows[ev["cat"]].append((ev["ts"], end))
            elif ev["cat"] == "kernel":
                windows["sm"].append((ev["args"].get("service_ts", ev["ts"]), end))
        for name, pairs in windows.items():
            from_doc = total_length(merge_intervals(pairs)) / US
            assert from_doc == pytest.approx(
                report.engines[name].busy_seconds, rel=0.01
            ), name

    def test_served_work_matches_stats(self, report, result):
        assert report.engines["h2d"].served_work == pytest.approx(
            result.stats.h2d_bytes, rel=1e-9
        )
        assert report.engines["d2h"].served_work == pytest.approx(
            result.stats.d2h_bytes, rel=1e-9
        )

    def test_occupancy_bounded(self, report):
        for name, eng in report.engines.items():
            assert 0.0 <= eng.occupancy <= 1.0, name
            assert eng.utilization_seconds <= eng.busy_seconds * 1.000001, name
            for (s0, e0), (s1, e1) in zip(eng.busy_intervals, eng.busy_intervals[1:]):
                assert s0 <= e0 <= s1 <= e1  # disjoint and sorted


class TestOverlap:
    def test_async_run_hides_transfer(self, report):
        # K=8 staging on a streamed graph overlaps copy with compute.
        assert report.overlap.efficiency > 0.2
        assert report.overlap.hidden_transfer <= min(
            report.overlap.transfer_busy, report.overlap.kernel_busy
        )

    def test_unoptimized_run_has_zero_overlap(self, unopt_result):
        rep = build_profile(unopt_result)
        assert rep.overlap.efficiency == 0.0
        assert all(it.overlap_efficiency == 0.0 for it in rep.per_iteration)

    def test_per_iteration_partitions_overall(self, report):
        # Iteration spans are disjoint, so per-iteration hidden transfer
        # can never exceed the run-wide total.
        assert len(report.per_iteration) == report.iterations
        hidden = sum(it.hidden_transfer for it in report.per_iteration)
        assert hidden <= report.overlap.hidden_transfer * 1.000001
        for it in report.per_iteration:
            assert it.start <= it.end
            assert 0.0 <= it.overlap_efficiency <= 1.0

    def test_device_busy_bounded_by_makespan(self, report, result):
        assert report.overlap.device_busy <= result.sim_time * 1.000001


class TestFrontierSkip:
    def test_counts_match_stats(self, report, result):
        assert report.frontier.shards_processed == result.stats.shards_processed
        assert report.frontier.shards_skipped == result.stats.shards_skipped
        assert 0.0 <= report.frontier.skip_rate <= 1.0

    def test_bytes_saved_scales_with_skips(self, report):
        if report.frontier.shards_skipped == 0:
            assert report.frontier.est_bytes_saved == 0.0
        else:
            assert report.frontier.est_bytes_saved > 0.0


class TestModelValidation:
    def test_stream_run_validates_exactly(self, report):
        assert report.validation_ok
        names = {c.name for c in report.validation}
        assert {
            "eq2_concurrent_shards",
            "pcie_h2d_seconds",
            "pcie_d2h_seconds",
            "transfer_volume_bytes",
            "kernel_work_seconds",
        } <= names
        for check in report.validation:
            assert check.rel_error <= check.tolerance, check.name

    def test_bench_suite_under_tolerance(self):
        """ISSUE acceptance: predicted-vs-observed error under tolerance
        on the standard bench suite."""
        from repro.core.runtime import GraphReduce

        for name, make in bench._suite_cases().items():
            edges, program, options = make()
            result = GraphReduce(edges, options=options).run(program)
            checks = validate_cost_model(result)
            assert checks, name
            for check in checks:
                assert check.ok, f"{name}: {check.name} err {check.rel_error:.4f}"

    def test_eq2_replay_matches_engine(self, result):
        (cache_span,) = result.observer.find(category="phase", name="cache")
        assert predict_concurrent_shards(cache_span.attrs) == result.concurrent_shards

    def test_eq2_replay_sync_run_is_one(self, unopt_result):
        (cache_span,) = unopt_result.observer.find(category="phase", name="cache")
        assert predict_concurrent_shards(cache_span.attrs) == 1

    def test_eq2_replay_in_memory_is_none(self):
        assert predict_concurrent_shards({"in_memory": True}) is None
        assert predict_concurrent_shards({}) is None  # pre-profiler span

    def test_validation_requires_observability(self, graph):
        opts = STREAM_OPTS.replace(trace=False)
        res = GraphReduce(graph, options=opts).run(PageRank(tolerance=1e-3))
        with pytest.raises(ValueError):
            validate_cost_model(res)
        with pytest.raises(ValueError):
            build_profile(res)

    def test_model_check_math(self):
        ok = ModelCheck("x", predicted=1.0, observed=1.01, tolerance=0.02)
        bad = ModelCheck("x", predicted=1.0, observed=2.0, tolerance=0.02)
        zero = ModelCheck("x", predicted=0.0, observed=0.0, tolerance=0.0)
        assert ok.ok and not bad.ok and zero.ok
        assert bad.rel_error == pytest.approx(0.5)


class TestVerdict:
    def test_streamed_run_is_transfer_bound(self, graph):
        opts = STREAM_OPTS.replace(spray=False)
        res = GraphReduce(graph, options=opts).run(PageRank(tolerance=1e-3))
        rep = build_profile(res)
        assert rep.verdict.bottleneck == "transfer-bound"
        assert "spray" in rep.verdict.recommendation
        assert rep.verdict.estimated_speedup >= 1.0

    def test_in_memory_run_is_compute_bound(self, graph):
        res = GraphReduce(graph).run(PageRank(tolerance=1e-3))  # auto -> resident
        rep = build_profile(res)
        assert rep.verdict.bottleneck == "compute-bound"

    def test_diagnose_recommends_raising_k(self):
        v = diagnose(
            makespan=1.0,
            transfer_busy=0.8,
            kernel_busy=0.1,
            hidden_transfer=0.05,
            device_busy=0.85,
            skip_rate=0.0,
            kernel_launches=10,
            copies=20,
            concurrent_shards=2,
            eq2_optimum=8,
            spray_batches=5,
            sm_occupancy=0.1,
        )
        assert v.bottleneck == "transfer-bound"
        assert "raise K from 2" in v.recommendation
        assert "8" in v.recommendation

    def test_diagnose_skip_dominated(self):
        v = diagnose(
            makespan=1.0,
            transfer_busy=0.05,
            kernel_busy=0.05,
            hidden_transfer=0.0,
            device_busy=0.1,
            skip_rate=0.9,
            kernel_launches=100,
            copies=100,
            concurrent_shards=4,
            eq2_optimum=4,
            spray_batches=0,
            sm_occupancy=0.05,
        )
        assert v.bottleneck == "skip-dominated"
        assert "AdaptiveEngine" in v.recommendation


class TestProfileDocument:
    def test_json_round_trip(self, report):
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["profile_version"] == 1
        assert doc["algo"] == "pagerank"
        assert set(doc["engines"]) >= {"h2d", "d2h", "sm"}
        assert doc["overlap"]["efficiency"] == pytest.approx(report.overlap.efficiency)
        assert len(doc["per_iteration"]) == report.iterations
        assert all(c["ok"] for c in doc["model_validation"])

    def test_write_profile(self, report, tmp_path):
        path = write_profile(tmp_path / "profile.json", report)
        doc = json.loads(path.read_text())
        assert doc["profile_version"] == 1

    def test_to_text_renders(self, report):
        text = report.to_text()
        assert "bottleneck" in text
        assert "model validation" in text
        assert "[ok ]" in text and "FAIL" not in text

    def test_metric_table_accepts_profile_doc(self, report):
        table = bench.metric_table(report.to_dict())
        ((case, row),) = table.items()
        assert case == "pagerank/rmat"
        assert "sim_time" in row and "overlap_efficiency" in row
        assert any(k.startswith("phase:") for k in row)
        assert any(k.startswith("counter:") for k in row)
