"""AdaptiveEngine observability: CPU-placed iterations must be as
visible as GPU-placed ones -- symmetric spans, symmetric counters, and
one interleaved timeline in the Chrome export."""

import json

import pytest

from repro.algorithms import SSSP, BFS, PageRank
from repro.core.scheduler import AdaptiveEngine
from repro.graph.generators import path_graph, rmat
from repro.obs.export import RUNTIME_PID, to_chrome_trace


@pytest.fixture(scope="module")
def mixed():
    """A run the engine splits across both processors: SSSP starts on a
    1-vertex frontier (CPU wins), sweeps a dense rmat middle (GPU wins),
    then finishes on the sparse tail (CPU again)."""
    g = rmat(13, 120_000, seed=5).with_random_weights(seed=5)
    return AdaptiveEngine(g).run(SSSP(source=0))


class TestPlacementSpans:
    def test_run_actually_mixes_placements(self, mixed):
        assert set(mixed.placement) == {"gpu", "cpu"}
        assert mixed.switches >= 2

    def test_every_iteration_has_a_span_with_placement(self, mixed):
        spans = list(mixed.observer.find(category="iteration"))
        assert len(spans) == mixed.iterations
        assert [sp.attrs["placement"] for sp in spans] == mixed.placement
        for sp in spans:
            assert sp.end is not None and sp.end >= sp.start
            assert sp.attrs["frontier"] > 0

    def test_cpu_spans_symmetric_with_gpu_spans(self, mixed):
        """Same category, same attribute keys -- consumers need not
        special-case the placement."""
        by_side = {"gpu": [], "cpu": []}
        for sp in mixed.observer.find(category="iteration"):
            by_side[sp.attrs["placement"]].append(sp)
        assert by_side["gpu"] and by_side["cpu"]
        keys = {frozenset(sp.attrs) for side in by_side.values() for sp in side}
        assert len(keys) == 1

    def test_span_clock_accumulates_both_sides(self, mixed):
        spans = sorted(mixed.observer.find(category="iteration"), key=lambda s: s.start)
        for a, b in zip(spans, spans[1:]):
            assert b.start >= a.end - 1e-15  # no overlap, either placement
        total = sum(sp.end - sp.start for sp in spans)
        assert total == pytest.approx(mixed.gpu_time + mixed.cpu_time, rel=1e-9)

    def test_switch_events_recorded(self, mixed):
        events = [
            sp for sp in mixed.observer.iter_spans() if sp.category == "adaptive"
        ]
        assert len(events) == mixed.switches
        assert {e.attrs["to"] for e in events} <= {"gpu", "cpu"}


class TestPlacementCounters:
    def test_counters_partition_the_iterations(self, mixed):
        m = mixed.observer.metrics
        gpu = m.value("adaptive.gpu_iterations")
        cpu = m.value("adaptive.cpu_iterations")
        assert gpu == mixed.placement.count("gpu")
        assert cpu == mixed.placement.count("cpu")
        assert gpu + cpu == mixed.iterations
        assert m.value("adaptive.switches") == mixed.switches

    def test_all_cpu_run_counts_symmetrically(self):
        res = AdaptiveEngine(path_graph(500)).run(BFS(source=0))
        m = res.observer.metrics
        assert set(res.placement) == {"cpu"}
        assert m.value("adaptive.cpu_iterations") == res.iterations
        assert m.value("adaptive.gpu_iterations") == 0

    def test_all_gpu_run_counts_symmetrically(self):
        res = AdaptiveEngine(rmat(12, 40_000, seed=7)).run(PageRank(tolerance=1e-3))
        m = res.observer.metrics
        assert set(res.placement) == {"gpu"}
        assert m.value("adaptive.gpu_iterations") == res.iterations
        assert m.value("adaptive.cpu_iterations") == 0

    def test_observe_false_disables_cleanly(self):
        res = AdaptiveEngine(path_graph(200), observe=False).run(BFS(source=0))
        assert res.observer is None
        assert res.converged


class TestAdaptiveChromeExport:
    def test_trace_interleaves_both_placements(self, mixed):
        doc = to_chrome_trace(observer=mixed.observer)
        evs = [
            ev
            for ev in doc["traceEvents"]
            if ev["ph"] == "X"
            and ev["pid"] == RUNTIME_PID
            and ev["cat"] == "iteration"
        ]
        assert len(evs) == mixed.iterations
        # Sorted by timestamp, the events reproduce the placement
        # sequence exactly: one timeline, both processors on it.
        evs.sort(key=lambda ev: ev["ts"])
        assert [ev["args"]["placement"] for ev in evs] == mixed.placement
        assert {ev["args"]["placement"] for ev in evs} == {"gpu", "cpu"}
        # Contiguous non-overlapping slots on the shared clock.
        for a, b in zip(evs, evs[1:]):
            assert b["ts"] >= a["ts"] + a["dur"] - 1e-9

    def test_export_json_serializable(self, mixed):
        doc = to_chrome_trace(observer=mixed.observer)
        parsed = json.loads(json.dumps(doc))
        assert parsed["metrics"]["counters"]["adaptive.switches"]["value"] == (
            mixed.switches
        )
