"""Chrome trace_event and JSON exporters."""

import json

import numpy as np
import pytest

from repro.algorithms import BFS, PageRank
from repro.core.report import build_report
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.graph.generators import erdos_renyi, rmat
from repro.obs.export import (
    DEVICE_PID,
    RUNTIME_PID,
    US,
    memcpy_duration_us,
    observer_to_json,
    result_to_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.span import Observer


@pytest.fixture(scope="module")
def result():
    g = rmat(10, 8_000, seed=3)
    opts = GraphReduceOptions(cache_policy="never")
    return GraphReduce(g, options=opts).run(PageRank(tolerance=1e-3))


@pytest.fixture(scope="module")
def doc(result):
    return result_to_chrome_trace(result)


class TestChromeTrace:
    def test_document_shape(self, doc):
        assert set(doc) >= {"traceEvents", "displayTimeUnit", "metrics"}
        assert all(ev["ph"] in ("X", "M") for ev in doc["traceEvents"])

    def test_process_metadata(self, doc):
        names = {
            ev["pid"]: ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert names == {RUNTIME_PID: "runtime", DEVICE_PID: "device"}

    def test_stream_threads_named(self, doc, result):
        streams = {iv.stream for iv in result.trace.intervals}
        thread_names = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name" and ev["pid"] == DEVICE_PID
        }
        assert thread_names == streams

    def test_span_events_cover_span_tree(self, doc, result):
        span_events = [
            ev for ev in doc["traceEvents"] if ev["ph"] == "X" and ev["pid"] == RUNTIME_PID
        ]
        assert len(span_events) == sum(1 for _ in result.observer.iter_spans())
        cats = {ev["cat"] for ev in span_events}
        assert {"run", "iteration", "phase", "shard"} <= cats

    def test_interval_events_cover_device_trace(self, doc, result):
        dev = [
            ev
            for ev in doc["traceEvents"]
            if ev["ph"] == "X" and ev["pid"] == DEVICE_PID
        ]
        assert len(dev) == len(result.trace.intervals)
        total_kernel = sum(ev["dur"] for ev in dev if ev["cat"] == "kernel") / US
        assert total_kernel == pytest.approx(result.kernel_time, rel=1e-9)

    def test_memcpy_matches_report_within_1pct(self, doc, result):
        """The ISSUE acceptance criterion (exact equality in practice)."""
        report = build_report(result)
        trace_memcpy = memcpy_duration_us(doc) / US
        assert trace_memcpy == pytest.approx(report.memcpy_time, rel=0.01)
        assert trace_memcpy == pytest.approx(report.memcpy_time, rel=1e-9)

    def test_timestamps_in_microseconds(self, doc, result):
        xs = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert max(ev["ts"] + ev["dur"] for ev in xs) == pytest.approx(
            result.sim_time * US
        )

    def test_json_serializable(self, doc):
        parsed = json.loads(json.dumps(doc))
        assert parsed["displayTimeUnit"] == "ms"

    def test_write_chrome_trace(self, result, tmp_path):
        path = write_chrome_trace(tmp_path / "t.json", result=result)
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]

    def test_sources_optional(self):
        obs = Observer()
        with obs.span("x"):
            pass
        only_spans = to_chrome_trace(observer=obs)
        assert any(
            ev["ph"] == "X" and ev["pid"] == RUNTIME_PID
            for ev in only_spans["traceEvents"]
        )
        empty = to_chrome_trace()
        assert all(ev["ph"] == "M" for ev in empty["traceEvents"])
        assert memcpy_duration_us(empty) == 0.0


class TestObserverJson:
    def test_round_trip_with_numpy_attrs(self):
        obs = Observer()
        with obs.span("root", count=np.int64(3), frac=np.float32(0.5)) as root:
            with obs.span("child"):
                pass
            root.set(flag=np.bool_(True))
        obs.add("c", np.int64(7))
        doc = observer_to_json(obs)
        parsed = json.loads(json.dumps(doc))
        (r,) = parsed["spans"]
        assert r["name"] == "root"
        assert r["attrs"] == {"count": 3, "frac": 0.5, "flag": True}
        assert [c["name"] for c in r["children"]] == ["child"]
        assert parsed["metrics"]["counters"]["c"]["value"] == 7

    def test_full_run_serializes(self, result):
        doc = observer_to_json(result.observer)
        text = json.dumps(doc)
        assert json.loads(text)["metrics"]["counters"]["runtime.iterations"][
            "value"
        ] == result.iterations


def test_unoptimized_trace_also_consistent(tmp_path):
    g = erdos_renyi(500, 3_000, seed=4)
    opts = GraphReduceOptions.unoptimized()
    res = GraphReduce(g, options=opts).run(BFS(source=0))
    doc = result_to_chrome_trace(res)
    report = build_report(res)
    assert memcpy_duration_us(doc) / US == pytest.approx(report.memcpy_time, rel=0.01)
