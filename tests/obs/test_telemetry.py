"""Telemetry bus, bounded flight recorder, and heartbeat watchdog.

The flight-recorder half is property-based: whatever passes through a
ring, memory stays bounded by the byte budget and the drop counter is
exact. The watchdog half drives detection with a pinned fake clock --
stalls, recoveries, and (crucially) the no-false-positive guarantees
for idle components and clean shutdown.
"""

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.obs.health import HeartbeatRegistry, Incident, Watchdog
from repro.obs.metrics import METRICS_SCHEMA_VERSION, MetricsRegistry
from repro.obs.telemetry import (
    SCHEMA_VERSION,
    SPAN_RECORD_BYTES,
    FlightRecorder,
    Ring,
    RunTelemetry,
    TelemetryBus,
    TelemetryConfig,
)
from tests.fixture_graphs import build
from repro.algorithms import PageRank


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# ----------------------------------------------------------------------
# Ring: bounded memory, exact drop accounting (property-based)
# ----------------------------------------------------------------------
@given(
    capacity=st.integers(min_value=1, max_value=64),
    items=st.lists(st.integers(), max_size=300),
)
@settings(max_examples=60, deadline=None)
def test_ring_keeps_last_n_and_counts_drops(capacity, items):
    ring = Ring(capacity)
    for item in items:
        ring.append(item)
    kept = list(ring)
    assert kept == items[-capacity:][-len(kept):]
    assert len(ring) == min(len(items), capacity)
    assert len(ring._slots) == capacity  # storage never grows
    assert ring.appended == len(items)
    assert ring.dropped == max(0, len(items) - capacity)
    stats = ring.stats()
    assert stats["recorded"] + stats["dropped"] == stats["appended"]


def test_ring_rejects_zero_capacity():
    with pytest.raises(ValueError, match="capacity"):
        Ring(0)


@given(
    budget=st.integers(min_value=1, max_value=64 * SPAN_RECORD_BYTES),
    spans=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=40, deadline=None)
def test_flight_recorder_memory_is_o_budget(budget, spans):
    clock = FakeClock()
    rec = FlightRecorder(clock=clock, budget_bytes=budget)
    for i in range(spans):
        with rec.span(f"iter-{i}", category="iteration"):
            clock.advance(1.0)
    capacity = max(1, budget // (2 * SPAN_RECORD_BYTES))
    assert rec.span_ring.capacity == capacity
    assert len(rec.span_ring) <= capacity
    assert rec.span_ring.appended == spans
    assert rec.span_ring.dropped == max(0, spans - capacity)
    # No tree accumulates: bounded rings are the only span storage.
    assert rec.roots == []


def test_flight_recorder_records_flat_spans_and_events():
    clock = FakeClock()
    rec = FlightRecorder(clock=clock, budget_bytes=1 << 20)
    with rec.span("run", category="run"):
        clock.advance(1.0)
        with rec.span("iteration", category="iteration", index=3):
            clock.advance(2.0)
        rec.event("marker", category="debug")
    spans = rec.span_ring.to_list()
    # Inner span closes first; both carry real simulated timestamps.
    assert [s["name"] for s in spans] == ["iteration", "run"]
    assert spans[0] == {
        "name": "iteration",
        "category": "iteration",
        "start": 1.0,
        "end": 3.0,
        "attrs": {"index": 3},
    }
    assert rec.event_ring.to_list()[0]["name"] == "marker"
    snap = rec.snapshot()
    assert snap["schema"] == SCHEMA_VERSION
    assert snap["spans"]["recorded"] == 2
    # Metrics ride along untouched by the bounding.
    rec.add("runtime.iterations")
    assert rec.metrics.counters["runtime.iterations"].value == 1


def test_flight_recorder_engine_run_is_bounded(tmp_path):
    g = build("er_small")
    budget = 8 * 2 * SPAN_RECORD_BYTES
    opts = GraphReduceOptions(
        num_partitions=2,
        telemetry=TelemetryConfig(flight_recorder=True, budget_bytes=budget),
    )
    result = GraphReduce(g, options=opts).run(PageRank(tolerance=1e-3))
    flight = result.telemetry["flight_recorder"]
    assert flight["spans"]["capacity"] == 8
    assert flight["spans"]["recorded"] <= 8
    assert flight["spans"]["appended"] > 8  # a real run overflows it
    assert (
        flight["spans"]["dropped"]
        == flight["spans"]["appended"] - flight["spans"]["recorded"]
    )


# ----------------------------------------------------------------------
# TelemetryBus: schema-versioned JSONL, thread-safe sequencing
# ----------------------------------------------------------------------
def test_bus_writes_schema_versioned_jsonl(tmp_path):
    path = tmp_path / "stream.jsonl"
    bus = TelemetryBus.open(str(path))
    bus.emit("run_start", algorithm="pagerank")
    bus.emit("snapshot", iteration=0)
    bus.close()
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["kind"] for r in records] == ["run_start", "snapshot"]
    assert [r["seq"] for r in records] == [0, 1]
    for r in records:
        assert r["schema"] == SCHEMA_VERSION
        assert "wall_time" in r and "pid" in r


def test_bus_concurrent_emit_keeps_seq_dense(tmp_path):
    path = tmp_path / "stream.jsonl"
    bus = TelemetryBus.open(str(path))
    n, threads = 200, 8

    def hammer(t):
        for i in range(n):
            bus.emit("snapshot", thread=t, i=i)

    workers = [threading.Thread(target=hammer, args=(t,)) for t in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    bus.close()
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(records) == n * threads
    assert sorted(r["seq"] for r in records) == list(range(n * threads))


# ----------------------------------------------------------------------
# Heartbeats + watchdog (fake clock: no sleeps anywhere)
# ----------------------------------------------------------------------
def test_stalled_worker_raises_one_incident_then_recovers():
    clock = FakeClock()
    reg = HeartbeatRegistry(clock=clock)
    wd = Watchdog(reg, stall_timeout=5.0)
    reg.register("worker-0", kind="worker")
    reg.beat("worker-0")
    reg.busy("worker-0")
    clock.advance(4.0)
    assert wd.check() == []  # within the timeout
    clock.advance(2.0)
    fresh = wd.check()
    assert [i.kind for i in fresh] == ["stall"]
    assert fresh[0].component == "worker-0"
    assert fresh[0].component_kind == "worker"
    assert fresh[0].age == pytest.approx(6.0)
    # Edge-triggered: a still-stalled worker does not spam incidents.
    clock.advance(10.0)
    assert wd.check() == []
    reg.beat("worker-0")
    assert [i.kind for i in wd.check()] == ["recovered"]
    assert [i.kind for i in wd.incidents] == ["stall", "recovered"]


def test_stalled_prefetcher_detected():
    clock = FakeClock()
    reg = HeartbeatRegistry(clock=clock)
    wd = Watchdog(reg, stall_timeout=2.0)
    reg.register("prefetcher", kind="prefetcher")
    reg.busy("prefetcher")  # loads outstanding
    clock.advance(3.0)
    fresh = wd.check()
    assert [(i.kind, i.component) for i in fresh] == [("stall", "prefetcher")]


def test_idle_components_never_flagged():
    clock = FakeClock()
    reg = HeartbeatRegistry(clock=clock)
    wd = Watchdog(reg, stall_timeout=1.0)
    reg.register("worker-0", kind="worker")  # idle: blocks on its queue
    clock.advance(1000.0)
    assert wd.check() == []
    assert wd.incidents == []


def test_clean_shutdown_is_not_a_stall():
    clock = FakeClock()
    reg = HeartbeatRegistry(clock=clock)
    wd = Watchdog(reg, stall_timeout=5.0)
    reg.register("worker-0", kind="worker", busy=True)
    reg.unregister("worker-0")  # pool shutdown
    clock.advance(100.0)
    assert wd.check() == []
    assert wd.incidents == []


def test_unregister_while_stalled_suppresses_recovery_noise():
    clock = FakeClock()
    reg = HeartbeatRegistry(clock=clock)
    wd = Watchdog(reg, stall_timeout=1.0)
    reg.register("worker-0", kind="worker", busy=True)
    clock.advance(2.0)
    assert [i.kind for i in wd.check()] == ["stall"]
    reg.unregister("worker-0")
    # The component is gone, not recovered: no phantom incident.
    assert wd.check() == []


def test_watchdog_publishes_incidents_to_bus(tmp_path):
    path = tmp_path / "stream.jsonl"
    clock = FakeClock()
    reg = HeartbeatRegistry(clock=clock)
    bus = TelemetryBus.open(str(path))
    wd = Watchdog(reg, bus=bus, stall_timeout=1.0)
    reg.register("worker-1", kind="worker", busy=True)
    clock.advance(2.0)
    wd.check()
    wd.incident(
        Incident(
            kind="stall",
            component="worker-9",
            component_kind="worker",
            age=9.0,
            wall_time=clock(),
            details="external escalation",
        )
    )
    bus.close()
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["kind"] for r in records] == ["incident", "incident"]
    assert [r["incident_kind"] for r in records] == ["stall", "stall"]
    assert records[0]["component"] == "worker-1"
    assert records[1]["details"] == "external escalation"


def test_leaked_thread_detection_respects_baseline():
    reg = HeartbeatRegistry()
    wd = Watchdog(reg)
    release = threading.Event()
    leak = threading.Thread(
        target=release.wait, name="shard-prefetch-leaked", daemon=True
    )
    leak.start()
    try:
        flagged = wd.check_threads()
        assert [i.component for i in flagged] == ["shard-prefetch-leaked"]
        assert flagged[0].kind == "leaked-thread"
        # A pre-existing thread captured in the baseline is exempt.
        assert wd.check_threads(baseline={leak.ident}) == []
    finally:
        release.set()
        leak.join()


# ----------------------------------------------------------------------
# RunTelemetry lifecycle
# ----------------------------------------------------------------------
def test_run_telemetry_stream_lifecycle(tmp_path):
    path = tmp_path / "run.jsonl"
    cfg = TelemetryConfig(out=str(path), interval=0.0, watchdog_poll=60.0)
    telem = RunTelemetry(cfg)
    telem.add_source("plan_cache", lambda: {"hits": 7, "misses": 1})
    telem.start(algorithm="pagerank", backend="serial", workers=0)
    for i in range(3):
        telem.iteration(i, frontier=100 - i)
    summary = telem.finish(iterations=3, converged=True)
    assert telem.finish(iterations=3, converged=True) == summary  # idempotent
    records = [json.loads(line) for line in path.read_text().splitlines()]
    kinds = [r["kind"] for r in records]
    assert kinds == ["run_start"] + ["snapshot"] * 3 + ["run_end"]
    assert records[0]["algorithm"] == "pagerank"
    snap = records[2]
    assert snap["iteration"] == 1
    assert snap["frontier"] == 99
    assert snap["sources"]["plan_cache"] == {"hits": 7, "misses": 1}
    assert "main-loop" in snap["heartbeats"]
    assert records[-1]["converged"] is True
    assert records[-1]["incidents"] == 0
    assert summary["records"] == 5
    assert summary["incidents"] == []


def test_run_telemetry_interval_throttles_snapshots(tmp_path):
    path = tmp_path / "run.jsonl"
    cfg = TelemetryConfig(out=str(path), interval=3600.0, watchdog_poll=60.0)
    telem = RunTelemetry(cfg)
    telem.start(algorithm="bfs")
    for i in range(50):
        telem.iteration(i, frontier=1)
    telem.finish(iterations=50, converged=False)
    kinds = [json.loads(l)["kind"] for l in path.read_text().splitlines()]
    assert kinds.count("snapshot") == 0  # interval never elapsed
    assert kinds[0] == "run_start" and kinds[-1] == "run_end"


# ----------------------------------------------------------------------
# Thread-safe metrics (satellite: concurrent writers, exact totals)
# ----------------------------------------------------------------------
def test_registry_hammered_from_8_threads_keeps_exact_totals():
    reg = MetricsRegistry()
    threads, n = 8, 5_000

    def hammer(t):
        for i in range(n):
            reg.add("shared.counter")
            reg.add("per.bytes", 3)
            reg.observe("shared.hist", (i % 7) + 1)

    workers = [threading.Thread(target=hammer, args=(t,)) for t in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    assert reg.counters["shared.counter"].value == threads * n
    assert reg.counters["per.bytes"].value == 3 * threads * n
    hist = reg.histograms["shared.hist"]
    assert hist.count == threads * n
    assert hist.total == sum(((i % 7) + 1) for i in range(n)) * threads
    snap = reg.snapshot()
    assert snap["schema"] == METRICS_SCHEMA_VERSION
    restored = MetricsRegistry.from_snapshot(snap)
    assert restored.snapshot() == snap
