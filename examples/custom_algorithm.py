#!/usr/bin/env python
"""Writing a custom algorithm against the GAS API (Section 4.1).

Implements *widest path* (maximum-bottleneck-bandwidth routing): the
value of a vertex is the largest bandwidth achievable from the source,
where a path's bandwidth is its narrowest edge. This needs exactly the
four ingredients the paper's user interface asks for:

  gather_map   : candidate bandwidth = min(src value, edge capacity)
  gather_reduce: np.maximum   (the paper's |+| combiner as a ufunc)
  apply        : keep improvements, report the changed mask
  scatter      : not needed -> the Phase Fusion Engine elides it

Run:  python examples/custom_algorithm.py
"""

import numpy as np

from repro.core import GraphReduce
from repro.core.api import GASProgram
from repro.graph.generators import erdos_renyi


class WidestPath(GASProgram):
    """Maximum bottleneck bandwidth from a source vertex."""

    name = "widest-path"
    gather_reduce = np.maximum
    gather_identity = 0.0
    needs_weights = True  # edge weight = link capacity

    def __init__(self, source: int = 0):
        self.source = source

    def init_vertices(self, ctx):
        vals = np.zeros(ctx.num_vertices, dtype=self.vertex_dtype)
        vals[self.source] = np.inf  # infinite bandwidth to itself
        return vals

    def init_frontier(self, ctx):
        frontier = np.zeros(ctx.num_vertices, dtype=bool)
        frontier[self.source] = True
        return frontier

    def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
        return np.minimum(src_vals, weights)

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        candidate = np.where(has_gather, gathered, 0.0).astype(old_vals.dtype)
        improved = candidate > old_vals
        new_vals = np.where(improved, candidate, old_vals)
        changed = improved | ((vids == self.source) & (iteration == 0))
        return new_vals, changed


def reference_widest_path(graph, source):
    """O(V^2) Dijkstra-style reference for validation."""
    n = graph.num_vertices
    width = np.zeros(n)
    width[source] = np.inf
    done = np.zeros(n, dtype=bool)
    adj = [[] for _ in range(n)]
    for s, d, w in zip(graph.src, graph.dst, graph.weights):
        adj[s].append((int(d), float(w)))
    for _ in range(n):
        u = int(np.argmax(np.where(done, -1.0, width)))
        if width[u] <= 0 or done[u]:
            break
        done[u] = True
        for v, w in adj[u]:
            width[v] = max(width[v], min(width[u], w))
    return width


def main() -> None:
    graph = erdos_renyi(2_000, 16_000, seed=11).with_random_weights(
        low=1.0, high=100.0, seed=12
    )
    print(f"input: {graph} (edge weights = link capacities in [1, 100))")

    result = GraphReduce(graph).run(WidestPath(source=0))
    widths = result.vertex_values
    print(f"converged in {result.iterations} iterations "
          f"(simulated {result.sim_time * 1e3:.3f} ms)")

    reference = reference_widest_path(graph, 0)
    reachable = reference > 0
    ok = np.allclose(widths[reachable], reference[reachable], rtol=1e-5)
    print(f"matches O(V^2) reference on {np.count_nonzero(reachable)} "
          f"reachable vertices: {ok}")
    assert ok

    finite = widths[reachable & (widths < np.inf)]
    print(f"bottleneck bandwidth: min {finite.min():.1f}, "
          f"median {np.median(finite):.1f}, max {finite.max():.1f}")


if __name__ == "__main__":
    main()
