#!/usr/bin/env python
"""The future-work extensions in one tour: multi-GPU scaling, evolving

graphs with incremental warm starts, adaptive CPU/GPU placement, and
energy accounting.

Run:  python examples/advanced_features.py
"""

import numpy as np

from repro.algorithms import BFSGather, PageRank
from repro.core import GraphReduce, GraphReduceOptions
from repro.core.multigpu import MultiGPUGraphReduce
from repro.core.scheduler import AdaptiveEngine
from repro.graph.dynamic import DynamicGraphStream, EdgeBatch, incremental_program
from repro.graph.generators import rmat, road_network
from repro.sim.energy import EnergyModel


def demo_multigpu(graph) -> None:
    print("--- multi-GPU scaling (future work 1) ---")
    opts = GraphReduceOptions(cache_policy="never")
    base = None
    for n in (1, 2, 4):
        r = MultiGPUGraphReduce(graph, num_devices=n, options=opts).run(
            PageRank(tolerance=1e-3)
        )
        base = base or r.sim_time
        print(f"  {n} device(s): {r.sim_time:8.4f}s  ({base / r.sim_time:.2f}x)")


def demo_dynamic(graph) -> None:
    print("--- evolving graph, incremental warm start (future work 3) ---")
    rng = np.random.default_rng(42)
    batch = EdgeBatch(
        rng.integers(0, graph.num_vertices, 500),
        rng.integers(0, graph.num_vertices, 500),
    )
    stream = DynamicGraphStream(graph, [batch])
    base = GraphReduce(stream.snapshot(0)).run(BFSGather(source=1))
    updated = stream.snapshot(1)
    scratch = GraphReduce(updated).run(BFSGather(source=1))
    warm = GraphReduce(updated).run(
        incremental_program(BFSGather(source=1), base.vertex_values, batch)
    )
    assert np.array_equal(warm.vertex_values, scratch.vertex_values)
    print(f"  +500 edges: from-scratch {scratch.iterations} iterations "
          f"({scratch.sim_time * 1e3:.2f} ms) vs warm start {warm.iterations} "
          f"iterations ({warm.sim_time * 1e3:.2f} ms) -- identical results")


def demo_adaptive() -> None:
    print("--- adaptive CPU/GPU placement (future work 4) ---")
    road = road_network(120, 120, 300, seed=5)
    r = AdaptiveEngine(road).run(BFSGather(source=0))
    gpu_iters = sum(1 for p in r.placement if p == "gpu")
    print(f"  road-network BFS, {r.iterations} iterations: "
          f"{gpu_iters} on GPU, {r.iterations - gpu_iters} on CPU "
          f"({r.switches} switches, total {r.sim_time * 1e3:.2f} ms)")


def demo_energy(graph) -> None:
    print("--- energy accounting (future work 5) ---")
    model = EnergyModel()
    opt = GraphReduce(graph, options=GraphReduceOptions(cache_policy="never")).run(
        PageRank(tolerance=1e-3)
    )
    unopt = GraphReduce(graph, options=GraphReduceOptions.unoptimized()).run(
        PageRank(tolerance=1e-3)
    )
    e_opt = model.energy(opt.trace, makespan=opt.sim_time)
    e_unopt = model.energy(unopt.trace, makespan=unopt.sim_time)
    print(f"  PageRank energy: unoptimized {e_unopt.total_j:.2f} J -> "
          f"optimized {e_opt.total_j:.2f} J "
          f"({100 * (1 - e_opt.total_j / e_unopt.total_j):.0f}% saved, "
          f"avg draw {e_opt.average_watts:.0f} W)")


def main() -> None:
    graph = rmat(13, 300_000, seed=11)
    print(f"input: {graph}\n")
    demo_multigpu(graph)
    demo_dynamic(graph)
    demo_adaptive()
    demo_energy(graph)


if __name__ == "__main__":
    main()
