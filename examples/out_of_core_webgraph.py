#!/usr/bin/env python
"""Out-of-GPU-memory processing: the paper's headline scenario.

Generates a web-crawl-like graph whose working set exceeds the simulated
device memory, so GraphReduce must shard it and stream shards over PCIe.
Runs BFS with and without the Section-5 optimizations to show what
dynamic frontier management, phase fusion/elimination and asynchronous
spray streams buy -- the Figure 15 experiment in miniature -- then
contrasts with a CPU out-of-core baseline (X-Stream).

Run:  python examples/out_of_core_webgraph.py
"""

import numpy as np

from repro.algorithms import BFS
from repro.baselines import XStream
from repro.core import GraphReduce, GraphReduceOptions
from repro.graph.generators import web_graph
from repro.graph.properties import footprint_bytes
from repro.sim.specs import DeviceSpec


def main() -> None:
    graph = web_graph(scale=17, num_edges=2_000_000, seed=3)
    device = DeviceSpec()
    fp = footprint_bytes(graph)
    print(f"input: {graph}")
    print(f"graph footprint {fp / 2**20:.1f} MiB vs device memory "
          f"{device.memory_bytes / 2**20:.1f} MiB -> out-of-memory: {fp > device.memory_bytes}")

    source = int(np.argmax(graph.out_degrees()))
    optimized = GraphReduce(graph).run(BFS(source=source))
    unoptimized = GraphReduce(graph, options=GraphReduceOptions.unoptimized()).run(
        BFS(source=source)
    )
    assert np.array_equal(optimized.vertex_values, unoptimized.vertex_values)

    print(f"\nBFS from vertex {source}: reached "
          f"{np.count_nonzero(~np.isinf(optimized.vertex_values))} vertices "
          f"in {optimized.iterations} iterations")
    print(f"shards: {optimized.num_partitions}, concurrent (Eq.1/2): "
          f"K={optimized.concurrent_shards}")

    def show(label, r):
        total = r.stats.shards_processed + r.stats.shards_skipped
        print(f"  {label:12s} time {r.sim_time:8.4f}s  memcpy {r.memcpy_time:8.4f}s  "
              f"H2D {r.stats.h2d_bytes / 2**20:8.1f} MiB  "
              f"shards skipped {r.stats.shards_skipped}/{total}")

    print("\noptimized vs unoptimized GraphReduce (identical results):")
    show("optimized", optimized)
    show("unoptimized", unoptimized)
    saved = 1 - optimized.memcpy_time / unoptimized.memcpy_time
    print(f"  -> memcpy time cut by {100 * saved:.1f}% "
          "(paper Figure 15: 51.5% average, 78.8% max)")

    xs = XStream().run(graph, BFS(source=source))
    print(f"\nX-Stream (16-core host) on the same input: {xs.sim_time:.4f}s "
          f"-> GraphReduce speedup {xs.sim_time / optimized.sim_time:.1f}x")


if __name__ == "__main__":
    main()
