#!/usr/bin/env python
"""A miniature Table 3: GraphReduce vs the out-of-core CPU frameworks

and the in-GPU-memory frameworks on one out-of-memory graph. Shows the
full cast: GraphChi and X-Stream run (slowly) from host memory, CuSha
and MapGraph refuse the input outright, Totem processes only a subgraph
on the GPU, and GraphReduce streams shards.

Run:  python examples/framework_comparison.py
"""

import numpy as np

from repro.algorithms import BFS, PageRank
from repro.baselines import CuSha, GraphChi, MapGraph, Totem, XStream
from repro.core import GraphReduce
from repro.graph.generators import rmat
from repro.graph.properties import footprint_bytes
from repro.sim.memory import DeviceOOMError
from repro.sim.specs import DeviceSpec


def main() -> None:
    graph = rmat(14, 1_500_000, seed=21, name="kron-like")
    fp = footprint_bytes(graph) / 2**20
    cap = DeviceSpec().memory_bytes / 2**20
    print(f"input: {graph}  footprint {fp:.1f} MiB vs device {cap:.1f} MiB\n")

    source = int(np.argmax(graph.out_degrees()))
    for label, prog_factory in (
        ("BFS", lambda: BFS(source=source)),
        ("PageRank", lambda: PageRank(tolerance=1e-3)),
    ):
        print(f"--- {label} ---")
        gr = GraphReduce(graph).run(prog_factory())
        print(f"  GraphReduce  {gr.sim_time:9.4f}s  "
              f"(streaming {gr.num_partitions} shards, K={gr.concurrent_shards})")
        for framework in (GraphChi(), XStream(), Totem()):
            r = framework.run(graph, prog_factory())
            agree = np.array_equal(r.vertex_values, gr.vertex_values)
            print(f"  {r.framework:12s} {r.sim_time:9.4f}s  "
                  f"speedup {r.sim_time / gr.sim_time:6.1f}x  identical={agree}")
        for framework in (CuSha(), MapGraph()):
            try:
                framework.run(graph, prog_factory())
                print(f"  {framework.name:12s} unexpectedly fit!")
            except DeviceOOMError as e:
                print(f"  {framework.name:12s} cannot run: {e}")
        print()
    totem = Totem()
    print(f"Totem's GPU only sees {100 * totem.gpu_utilization(graph):.0f}% "
          "of the edges (static split) -- the Section 2.2 underutilization.")


if __name__ == "__main__":
    main()
