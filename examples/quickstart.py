#!/usr/bin/env python
"""Quickstart: PageRank on a social-network-like graph with GraphReduce.

Builds a synthetic power-law graph, runs PageRank through the
GraphReduce engine on the simulated K20c machine, and prints the top
vertices plus the execution profile (simulated time, memcpy share,
frontier evolution).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.algorithms import PageRank
from repro.core import GraphReduce
from repro.graph.generators import social_graph


def main() -> None:
    # An orkut-flavoured graph: 2**12 vertices, ~40k undirected edges
    # stored as directed pairs.
    graph = social_graph(scale=12, num_undirected_edges=40_000, seed=7)
    print(f"input: {graph}")

    engine = GraphReduce(graph)
    result = engine.run(PageRank(tolerance=1e-5))

    ranks = result.vertex_values
    top = np.argsort(ranks)[::-1][:10]
    print("\ntop-10 vertices by PageRank:")
    for v in top:
        print(f"  vertex {v:6d}  rank {ranks[v]:8.3f}  degree {graph.out_degrees()[v]}")

    print("\nexecution profile (simulated K20c + Xeon host):")
    print(f"  iterations          : {result.iterations} (converged={result.converged})")
    print(f"  mode                : {'in-GPU-memory' if result.in_memory_mode else 'out-of-memory streaming'}")
    print(f"  partitions / streams: {result.num_partitions} shards, K={result.concurrent_shards}")
    print(f"  simulated time      : {result.sim_time * 1e3:.3f} ms")
    print(f"  memcpy time         : {result.memcpy_time * 1e3:.3f} ms "
          f"({100 * result.memcpy_fraction:.1f}% of execution)")
    print(f"  kernel launches     : {result.stats.kernel_launches}")
    print(f"  H2D traffic         : {result.stats.h2d_bytes / 2**20:.2f} MiB")
    head = ", ".join(str(s) for s in result.frontier_history[:8])
    print(f"  frontier sizes      : {head}, ...")


if __name__ == "__main__":
    main()
