#!/usr/bin/env python
"""Heat simulation on a 2-D mesh -- one of the GAS-expressible scientific

workloads the paper cites (Section 2.1). Two corners are pinned hot;
the field diffuses until movement drops below tolerance. Prints an ASCII
heatmap of the steady state and the frontier decay (vertices whose
temperature is still changing).

Run:  python examples/heat_diffusion.py
"""

import numpy as np

from repro.algorithms import HeatSimulation
from repro.core import GraphReduce
from repro.graph.generators import mesh2d

SHADES = " .:-=+*#%@"


def main() -> None:
    nx, ny = 24, 48
    graph = mesh2d(nx, ny)
    hot = (0, nx * ny - 1)  # opposite corners
    print(f"input: {graph} ({nx}x{ny} grid, hot corners {hot})")

    result = GraphReduce(graph).run(
        HeatSimulation(hot_vertices=hot, hot_temperature=100.0, alpha=0.6, tolerance=5e-3)
    )
    temps = result.vertex_values.reshape(nx, ny)
    print(f"settled after {result.iterations} iterations "
          f"(simulated {result.sim_time * 1e3:.2f} ms)\n")

    for row in temps[::2]:
        line = "".join(
            SHADES[min(int(t / 100.0 * (len(SHADES) - 1)), len(SHADES) - 1)]
            for t in row
        )
        print("  " + line)

    history = result.frontier_history
    print("\nactive-vertex decay (every 10th iteration):")
    print("  " + " ".join(str(s) for s in history[::10]))
    assert temps[0, 0] == 100.0 and temps[-1, -1] == 100.0
    assert np.all(temps >= -1e-3)


if __name__ == "__main__":
    main()
